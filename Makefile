# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench doc clean examples

all: build

build:
	dune build @all

test:
	dune runtest

# The full gate: build everything, run the test suite, and smoke the bench
# harness (single cheap iteration; also proves the JSON emitter runs).
check: build test
	dune exec bench/main.exe -- E9 --smoke

# Regenerates every paper figure/scenario (see EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# A subset, e.g. `make bench-E3 bench-E5`.
bench-%:
	dune exec bench/main.exe -- $*

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ehr_cross_domain.exe
	dune exec examples/visiting_doctor.exe
	dune exec examples/anonymous_clinic.exe
	dune exec examples/accident_emergency.exe
	dune exec examples/night_shift.exe
	dune exec examples/trust_marketplace.exe

doc:
	dune build @doc

clean:
	dune clean
