(* Anonymous service use (Sect. 5, "Anonymity").

   Run with: dune exec examples/anonymous_clinic.exe

   Privacy legislation allows insured members to take genetic tests
   anonymously. The insurance company's CIV issues a membership card — an
   appointment certificate carrying only the scheme and expiry, bound to a
   pseudonym key created by the member. The clinic validates the card at the
   issuing CIV (a trusted third party) and checks the date constraint; it
   never learns who the member is, and the insurer never learns that a test
   took place. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Domain = Oasis_domain.Domain
module Anonymity = Oasis_domain.Anonymity
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  let world = World.create ~seed:8 () in

  banner "The insurance scheme and the clinic";
  let insurer = Domain.create world ~name:"mutual-health" () in
  let clinic =
    Service.create world ~name:"genetic-clinic"
      ~policy:"priv take_genetic_test(exp) <- paid_up_patient(exp);" ()
  in
  Service.add_activation_rule clinic
    (Anonymity.member_role_rule ~scheme:"insured" ~civ_name:"mutual-health.civ"
       ~role:"paid_up_patient");
  Service.register_operation clinic "take_genetic_test" (fun ~principal args ->
      ignore args;
      Printf.printf "  [clinic] sample taken for %s; billing the scheme\n"
        (Ident.to_string principal);
      Some (Value.Str "results by sealed post"));

  banner "Enrolment";
  let bob = Principal.create world ~name:"bob-identity" in
  let membership =
    Anonymity.enroll ~civ:(Domain.civ insurer) ~member:bob ~scheme:"insured" ~expires_at:5000.0
  in
  World.settle world;
  Printf.printf "  membership card: %s\n"
    (Format.asprintf "%a" Oasis_cert.Appointment.pp membership.Anonymity.certificate);
  Printf.printf "  note: no personal details among the parameters; the alias is %s\n"
    (Ident.to_string membership.Anonymity.alias);

  banner "The anonymous visit";
  World.run_proc world (fun () ->
      let session = Principal.start_session bob in
      (match Anonymity.activate_anonymously bob session clinic ~role:"paid_up_patient" membership with
      | Ok rmc ->
          Printf.printf "  role entered: %s\n" (Format.asprintf "%a" Oasis_cert.Rmc.pp rmc)
      | Error d -> failwith (Protocol.denial_to_string d));
      match
        Principal.invoke_as bob session clinic ~privilege:"take_genetic_test"
          ~args:[ Value.Time membership.Anonymity.expires_at ]
          ~alias:membership.Anonymity.alias
      with
      | Ok (Some v) -> Printf.printf "  clinic replied: %s\n" (Value.to_string v)
      | Ok None -> ()
      | Error d -> failwith (Protocol.denial_to_string d));

  banner "What each party knows";
  Printf.printf "  clinic audit trail:\n";
  List.iter
    (fun (e : Service.audit_entry) ->
      Printf.printf "    %s by %s  <- pseudonymous\n" e.Service.action
        (Ident.to_string e.Service.principal))
    (Service.audit_log clinic);
  Printf.printf
    "  insurer: validated one membership card (%d validation(s) served), learned nothing else\n"
    (Array.fold_left ( + ) 0 (Oasis_domain.Civ.stats (Domain.civ insurer)).Oasis_domain.Civ.validations_served);

  banner "After the scheme lapses";
  World.run_until world 5001.0;
  World.settle world;
  World.run_proc world (fun () ->
      let session = Principal.start_session bob in
      match Anonymity.activate_anonymously bob session clinic ~role:"paid_up_patient" membership with
      | Error d -> Printf.printf "  enrolment expired, activation refused: %s\n" (Protocol.denial_to_string d)
      | Ok _ -> Printf.printf "  unexpected grant\n")
