(* The cross-domain electronic health record session of Fig. 3.

   Run with: dune exec examples/ehr_cross_domain.exe

   A doctor, active in the parametrised role treating_doctor(doctor, patient)
   at her hospital, asks the hospital's EHR management service for the
   patient's record. That service is OASIS-aware: it validates the
   treating_doctor RMC by callback to the hospital administration, then —
   acting as a principal itself — activates the role hospital(hospital_id)
   at the national patient record management service and performs the
   request-EHR and append-to-EHR invocations (paths 1-4 of the figure).
   Both services record the original requester for audit. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Domain = Oasis_domain.Domain
module Civ = Oasis_domain.Civ
module Sla = Oasis_domain.Sla
module Env = Oasis_policy.Env
module Term = Oasis_policy.Term
module Value = Oasis_util.Value
module Network = Oasis_sim.Network

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  let world = World.create ~seed:3 ~net_latency:0.002 () in

  banner "Domains and services";
  (* The hospital domain: administration (CIV), portal, EHR management. *)
  let hospital = Domain.create world ~name:"stmarys" () in
  let portal =
    Domain.add_service hospital ~name:"portal"
      ~policy:
        {|
          initial logged_in(u) <- appt:employee(u)@stmarys.civ;
          doctor(u) <- *logged_in(u), *appt:qualified(u)@stmarys.civ;
          treating_doctor(doc, pat) <-
              *doctor(doc), *env:assigned(doc, pat), env:!excluded(doc, pat);
        |}
      ()
  in
  Env.declare_fact (Domain.env hospital) "assigned";
  Env.declare_fact (Domain.env hospital) "excluded";
  let ehr_service =
    Domain.add_service hospital ~name:"ehr"
      ~policy:
        {|
          priv request_ehr(doc, pat) <- treating_doctor(doc, pat)@stmarys.portal;
          priv append_ehr(doc, pat) <- treating_doctor(doc, pat)@stmarys.portal;
        |}
      ()
  in

  (* The national EHR domain. *)
  let national = Domain.create world ~name:"nhs" () in
  let records =
    Domain.add_service national ~name:"records"
      ~policy:
        {|
          priv deliver_ehr(h, doc, pat) <- hospital(h);
          priv file_treatment(h, doc, pat) <- hospital(h);
        |}
      ()
  in
  (* The service-level agreement: accredited hospitals may activate the
     national role hospital(hospital_id) with their accreditation
     certificate (Sect. 3: "service level agreements between the national
     service and individual health care domains"). *)
  let _sla =
    Sla.establish world ~name:"nhs-stmarys-ehr" ~between:records ~and_:ehr_service
      ~clauses:
        [
          Sla.Accept_appointment
            {
              at = "nhs.records";
              role = "hospital";
              params = [ Term.Var "h" ];
              kind = "accredited_hospital";
              cert_args = [ Term.Var "h" ];
              issuer = "nhs.civ";
              monitored = true;
              extra = [];
              initial = true;
            };
        ]
  in

  (* National record store, keyed by patient id. *)
  let store : (int, string list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace store 1005 [ "2000-11-02 fracture, left radius" ];
  Service.register_operation records "deliver_ehr" (fun ~principal:_ args ->
      match args with
      | [ _; _; Value.Int pat ] ->
          let entries = Option.value ~default:[] (Hashtbl.find_opt store pat) in
          Some (Value.Str (String.concat " | " entries))
      | _ -> None);
  Service.register_operation records "file_treatment" (fun ~principal:_ args ->
      match args with
      | [ _; Value.Id doc; Value.Int pat ] ->
          let entries = Option.value ~default:[] (Hashtbl.find_opt store pat) in
          Hashtbl.replace store pat
            (entries @ [ Printf.sprintf "2001-11-12 treatment by %s" (Oasis_util.Ident.to_string doc) ]);
          Some (Value.Bool true)
      | _ -> None);

  banner "Credentials";
  (* The hospital EHR service acts as a principal toward the national
     service; the NHS accredits it. *)
  let hospital_id = Value.Id (Service.id portal) in
  let ehr_agent = Principal.create world ~name:"stmarys-ehr-agent" in
  let accreditation =
    Civ.issue (Domain.civ national) ~kind:"accredited_hospital" ~args:[ hospital_id ]
      ~holder:(Principal.id ehr_agent) ~holder_key:(Principal.longterm_public ehr_agent) ()
  in
  Principal.grant_appointment ehr_agent accreditation;
  Printf.printf "  NHS accredits St Mary's EHR service: %s\n"
    (Format.asprintf "%a" Oasis_cert.Appointment.pp accreditation);

  (* Dr Carol is employed and qualified (home-domain CIV certificates). *)
  let carol = Principal.create world ~name:"dr-carol" in
  let issue kind =
    let appt =
      Civ.issue (Domain.civ hospital) ~kind
        ~args:[ Value.Id (Principal.id carol) ]
        ~holder:(Principal.id carol) ~holder_key:(Principal.longterm_public carol) ()
    in
    Principal.grant_appointment carol appt
  in
  issue "employee";
  issue "qualified";
  World.settle world;

  (* The EHR service's agent keeps one session toward the national service. *)
  let agent_session = Principal.start_session ehr_agent in

  (* The hospital EHR service's operations drive the cross-domain calls.
     They run inside simulated processes, so blocking RPC is fine here. *)
  Service.register_operation ehr_service "request_ehr" (fun ~principal:_ args ->
      match args with
      | [ Value.Id doc; Value.Int pat ] -> (
          (* Ensure the hospital role is active at the national service. *)
          (if
             not
               (List.exists
                  (fun (r : Oasis_cert.Rmc.t) -> r.role = "hospital")
                  (Principal.session_rmcs agent_session))
           then
             match Principal.activate ehr_agent agent_session records ~role:"hospital" () with
             | Ok _ -> ()
             | Error d -> failwith ("hospital role: " ^ Protocol.denial_to_string d));
          match
            Principal.invoke ehr_agent agent_session records ~privilege:"deliver_ehr"
              ~args:[ hospital_id; Value.Id doc; Value.Int pat ]
          with
          | Ok result -> result
          | Error d -> Some (Value.Str ("national refusal: " ^ Protocol.denial_to_string d)))
      | _ -> None);
  Service.register_operation ehr_service "append_ehr" (fun ~principal:_ args ->
      match args with
      | [ Value.Id doc; Value.Int pat ] -> (
          match
            Principal.invoke ehr_agent agent_session records ~privilege:"file_treatment"
              ~args:[ hospital_id; Value.Id doc; Value.Int pat ]
          with
          | Ok result -> result
          | Error d -> Some (Value.Str ("national refusal: " ^ Protocol.denial_to_string d)))
      | _ -> None);

  banner "Dr Carol's session at the hospital";
  let session = Principal.start_session carol in
  Env.assert_fact (Domain.env hospital) "assigned" [ Value.Id (Principal.id carol); Value.Int 1005 ];
  World.run_proc world (fun () ->
      List.iter
        (fun role ->
          match Principal.activate carol session portal ~role () with
          | Ok rmc ->
              Printf.printf "  activated %s(%s)\n" role
                (String.concat ", " (List.map Value.to_string rmc.Oasis_cert.Rmc.args))
          | Error d -> failwith (Protocol.denial_to_string d))
        [ "logged_in"; "doctor"; "treating_doctor" ]);

  banner "Paths 1-2: request-EHR across domains";
  Network.reset_stats (World.network world);
  World.run_proc world (fun () ->
      match
        Principal.invoke carol session ehr_service ~privilege:"request_ehr"
          ~args:[ Value.Id (Principal.id carol); Value.Int 1005 ]
      with
      | Ok (Some (Value.Str record)) -> Printf.printf "  copy of EHR for patient 1005: %s\n" record
      | Ok _ -> Printf.printf "  (no record)\n"
      | Error d -> Printf.printf "  DENIED: %s\n" (Protocol.denial_to_string d));
  let s1 = Network.stats (World.network world) in
  Printf.printf "  network messages for the full chain: %d (incl. validation callbacks)\n"
    s1.Network.sent;

  banner "Paths 3-4: append-to-EHR after treatment";
  World.run_proc world (fun () ->
      match
        Principal.invoke carol session ehr_service ~privilege:"append_ehr"
          ~args:[ Value.Id (Principal.id carol); Value.Int 1005 ]
      with
      | Ok (Some (Value.Bool true)) -> Printf.printf "  done\n"
      | Ok _ -> Printf.printf "  unexpected reply\n"
      | Error d -> Printf.printf "  DENIED: %s\n" (Protocol.denial_to_string d));
  Printf.printf "  record now: %s\n" (String.concat " | " (Hashtbl.find store 1005));

  banner "Audit (Sect. 3: the original requester is recorded)";
  List.iter
    (fun (e : Service.audit_entry) ->
      Printf.printf "  [national] %s(%s) by %s\n" e.Service.action
        (String.concat ", " (List.map Value.to_string e.Service.args))
        (Oasis_util.Ident.to_string e.Service.principal))
    (Service.audit_log records);
  List.iter
    (fun (e : Service.audit_entry) ->
      Printf.printf "  [hospital-ehr] %s(%s) by %s\n" e.Service.action
        (String.concat ", " (List.map Value.to_string e.Service.args))
        (Oasis_util.Ident.to_string e.Service.principal))
    (Service.audit_log ehr_service);

  banner "Patient exception: the patient excludes Dr Carol";
  Env.assert_fact (Domain.env hospital) "excluded"
    [ Value.Id (Principal.id carol); Value.Int 1005 ];
  World.run_proc world (fun () ->
      match
        Principal.invoke carol session ehr_service ~privilege:"request_ehr"
          ~args:[ Value.Id (Principal.id carol); Value.Int 1005 ]
      with
      | Error _ | Ok _ -> ());
  (* The exclusion guards role *activation*; the existing treating_doctor
     role is unaffected (not membership-marked), so enforce it nationally by
     revoking the assignment instead. *)
  Env.retract_fact (Domain.env hospital) "assigned"
    [ Value.Id (Principal.id carol); Value.Int 1005 ];
  World.settle world;
  World.run_proc world (fun () ->
      match
        Principal.invoke carol session ehr_service ~privilege:"request_ehr"
          ~args:[ Value.Id (Principal.id carol); Value.Int 1005 ]
      with
      | Error d -> Printf.printf "  further access refused: %s\n" (Protocol.denial_to_string d)
      | Ok (Some (Value.Str s)) when String.length s >= 16 && String.sub s 0 16 = "national refusal"
        -> Printf.printf "  further access refused nationally: %s\n" s
      | Ok _ -> Printf.printf "  unexpected grant\n")
