(* Roving principals between mutually-aware domains (Sect. 5).

   Run with: dune exec examples/visiting_doctor.exe

   A doctor employed at a hospital works temporarily at a research institute
   in another (mutually trusting) domain. The home domain's administrative
   service issues an employed_as_doctor appointment certificate; the
   institute's SLA-installed activation rule accepts it — with callback
   validation to the hospital — as proof of medical qualification for the
   visiting_doctor role, which carries more privilege than a plain guest.
   The reciprocal clause lets research medics visit the hospital. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Domain = Oasis_domain.Domain
module Civ = Oasis_domain.Civ
module Sla = Oasis_domain.Sla
module Term = Oasis_policy.Term
module Value = Oasis_util.Value

let banner title = Printf.printf "\n=== %s ===\n" title

let attempt label = function
  | Ok _ -> Printf.printf "  %s: granted\n" label
  | Error d -> Printf.printf "  %s: DENIED (%s)\n" label (Protocol.denial_to_string d)

let () =
  let world = World.create ~seed:5 () in

  banner "Two mutually-aware domains";
  let hospital = Domain.create world ~name:"hospital" () in
  let institute = Domain.create world ~name:"institute" () in
  let hospital_portal =
    Domain.add_service hospital ~name:"portal"
      ~policy:"initial staff(u) <- appt:employed_as_doctor(u)@hospital.civ;" ()
  in
  let institute_portal =
    Domain.add_service institute ~name:"portal"
      ~policy:
        {|
          // A minimal visitor role anyone can enter.
          initial guest <- env:eq(1, 1);
          priv read_public_data(u) <- guest;
          priv read_trial_data(u) <- visiting_doctor(u);
          priv run_ward_round(u) <- visiting_researcher(u);
        |}
      ()
  in
  (* run_ward_round belongs at the hospital, not the institute; install the
     reciprocal privilege there instead. *)
  let _ = hospital_portal in
  let sla =
    Sla.establish world ~name:"hospital-institute" ~between:hospital_portal ~and_:institute_portal
      ~clauses:
        [
          Sla.Accept_appointment
            {
              at = "institute.portal";
              role = "visiting_doctor";
              params = [ Term.Var "u" ];
              kind = "employed_as_doctor";
              cert_args = [ Term.Var "u" ];
              issuer = "hospital.civ";
              monitored = true;
              extra = [];
              initial = true;
            };
          Sla.Accept_appointment
            {
              at = "hospital.portal";
              role = "visiting_researcher";
              params = [ Term.Var "u" ];
              kind = "research_medic";
              cert_args = [ Term.Var "u" ];
              issuer = "institute.civ";
              monitored = true;
              extra = [];
              initial = true;
            };
        ]
  in
  Format.printf "%a\n" Sla.pp sla;

  banner "The hospital employs Dr Jones";
  let jones = Principal.create world ~name:"dr-jones" in
  let employment =
    Civ.issue (Domain.civ hospital) ~kind:"employed_as_doctor"
      ~args:[ Value.Id (Principal.id jones) ]
      ~holder:(Principal.id jones) ~holder_key:(Principal.longterm_public jones) ()
  in
  Principal.grant_appointment jones employment;
  World.settle world;
  Printf.printf "  home credential: %s\n" (Format.asprintf "%a" Oasis_cert.Appointment.pp employment);

  banner "Dr Jones arrives at the institute";
  let session = Principal.start_session jones in
  World.run_proc world (fun () ->
      attempt "enter as guest" (Principal.activate jones session institute_portal ~role:"guest" ());
      attempt "read public data"
        (Principal.invoke jones session institute_portal ~privilege:"read_public_data"
           ~args:[ Value.Id (Principal.id jones) ]);
      (* Without the visiting role, trial data is off limits. *)
      attempt "read trial data (as guest)"
        (Principal.invoke jones session institute_portal ~privilege:"read_trial_data"
           ~args:[ Value.Id (Principal.id jones) ]);
      attempt "activate visiting_doctor"
        (Principal.activate jones session institute_portal ~role:"visiting_doctor" ());
      attempt "read trial data (as visiting doctor)"
        (Principal.invoke jones session institute_portal ~privilege:"read_trial_data"
           ~args:[ Value.Id (Principal.id jones) ]));
  let hv = Civ.stats (Domain.civ hospital) in
  Printf.printf
    "  (the institute validated the certificate by callback: %d validations served at the hospital CIV)\n"
    (Array.fold_left ( + ) 0 hv.Civ.validations_served);

  banner "The reciprocal direction";
  let smith = Principal.create world ~name:"researcher-smith" in
  let research_post =
    Civ.issue (Domain.civ institute) ~kind:"research_medic"
      ~args:[ Value.Id (Principal.id smith) ]
      ~holder:(Principal.id smith) ~holder_key:(Principal.longterm_public smith) ()
  in
  Principal.grant_appointment smith research_post;
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session smith in
      attempt "researcher visits hospital"
        (Principal.activate smith s hospital_portal ~role:"visiting_researcher" ()));

  banner "Employment ends at home: the visit ends everywhere (Fig. 5)";
  Printf.printf "  institute roles before: %d\n"
    (List.length (Service.active_roles institute_portal));
  ignore
    (Civ.revoke (Domain.civ hospital) employment.Oasis_cert.Appointment.id
       ~reason:"employment terminated");
  World.settle world;
  Printf.printf "  institute roles after:  %d (visiting_doctor collapsed remotely)\n"
    (List.length (Service.active_roles institute_portal));
  World.run_proc world (fun () ->
      attempt "read trial data after termination"
        (Principal.invoke jones session institute_portal ~privilege:"read_trial_data"
           ~args:[ Value.Id (Principal.id jones) ]))
