(* Quickstart: one OASIS service, one principal, the full life of a role.

   Run with: dune exec examples/quickstart.exe

   Walks the four paths of Fig. 2 — role entry (1-2) and service use (3-4) —
   then demonstrates the active security environment: the role's membership
   conditions are monitored, and revoking the supporting credential collapses
   the role immediately. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Env = Oasis_policy.Env
module Value = Oasis_util.Value

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

let show_result label = function
  | Ok _ -> Printf.printf "   %s: granted\n" label
  | Error d -> Printf.printf "   %s: DENIED (%s)\n" label (Protocol.denial_to_string d)

let () =
  (* A world bundles the virtual clock, network and event middleware. *)
  let world = World.create ~seed:2001 () in

  step "Define a service and its policy (Horn clauses, Sect. 2)";
  let library =
    Service.create world ~name:"library"
      ~policy:
        {|
          // An initial role starts a session; membership ('*') of reader is
          // monitored: if the card is revoked the role dies immediately.
          initial reader(u) <- *appt:library_card(u);
          initial librarian <- env:eq(1, 1);
          priv borrow(u, book) <- reader(u), env:!banned(u, book);
          // Holding the librarian role carries the privilege of issuing cards.
          appoint library_card(u) <- librarian;
        |}
      ()
  in
  Env.declare_fact (Service.env library) "banned";
  Service.register_operation library "borrow" (fun ~principal:_ args ->
      match args with
      | [ _; Value.Str book ] -> Some (Value.Str (Printf.sprintf "enjoy %S" book))
      | _ -> None);
  let librarian = Principal.create world ~name:"librarian" in
  let ada = Principal.create world ~name:"ada" in

  step "Issue an appointment certificate (the library card, Sect. 2)";
  let card =
    World.run_proc world (fun () ->
        let s = Principal.start_session librarian in
        (match Principal.activate librarian s library ~role:"librarian" () with
        | Ok _ -> ()
        | Error d -> failwith (Protocol.denial_to_string d));
        match
          Principal.appoint librarian s library ~kind:"library_card"
            ~args:[ Value.Id (Principal.id ada) ]
            ~holder:ada ()
        with
        | Ok card -> card
        | Error d -> failwith (Protocol.denial_to_string d))
  in
  Printf.printf "   card issued: %s\n" (Format.asprintf "%a" Oasis_cert.Appointment.pp card);

  step "Role entry: ada activates reader with the card (paths 1-2)";
  let session = Principal.start_session ada in
  World.run_proc world (fun () ->
      show_result "activate reader" (Principal.activate ada session library ~role:"reader" ()));

  step "Service use: borrow a book (paths 3-4)";
  World.run_proc world (fun () ->
      (match
         Principal.invoke ada session library ~privilege:"borrow"
           ~args:[ Value.Id (Principal.id ada); Value.Str "Middleware 2001" ]
       with
      | Ok (Some v) -> Printf.printf "   service replied: %s\n" (Value.to_string v)
      | Ok None -> Printf.printf "   authorized (no operation registered)\n"
      | Error d -> Printf.printf "   DENIED: %s\n" (Protocol.denial_to_string d)));

  step "A parameter-level exception (the Fred Smith pattern)";
  Env.assert_fact (Service.env library) "banned"
    [ Value.Id (Principal.id ada); Value.Str "Restricted Volume" ];
  World.run_proc world (fun () ->
      show_result "borrow restricted"
        (Principal.invoke ada session library ~privilege:"borrow"
           ~args:[ Value.Id (Principal.id ada); Value.Str "Restricted Volume" ]));

  step "Active revocation: the card is withdrawn (Fig. 5)";
  Printf.printf "   active roles before: %d\n" (List.length (Service.active_roles library));
  ignore (Service.revoke_certificate library card.Oasis_cert.Appointment.id ~reason:"card expired");
  World.settle world;
  Printf.printf "   active roles after:  %d (reader collapsed without polling)\n"
    (List.length (Service.active_roles library));
  World.run_proc world (fun () ->
      show_result "borrow after revocation"
        (Principal.invoke ada session library ~privilege:"borrow"
           ~args:[ Value.Id (Principal.id ada); Value.Str "Middleware 2001" ]));

  let st = Service.stats library in
  step "Service statistics";
  Printf.printf
    "   activations granted/denied: %d/%d\n   invocations granted/denied: %d/%d\n   cascade deactivations: %d\n"
    st.Service.activations_granted st.Service.activations_denied st.Service.invocations_granted
    st.Service.invocations_denied st.Service.cascade_deactivations
