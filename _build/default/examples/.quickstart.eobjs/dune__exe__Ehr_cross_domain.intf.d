examples/ehr_cross_domain.mli:
