examples/night_shift.mli:
