examples/quickstart.mli:
