examples/night_shift.ml: List Oasis_core Oasis_domain Oasis_util Printf
