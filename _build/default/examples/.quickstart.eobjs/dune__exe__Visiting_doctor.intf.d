examples/visiting_doctor.mli:
