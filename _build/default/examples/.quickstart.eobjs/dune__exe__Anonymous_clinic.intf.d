examples/anonymous_clinic.mli:
