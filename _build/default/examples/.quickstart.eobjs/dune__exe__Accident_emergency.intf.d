examples/accident_emergency.mli:
