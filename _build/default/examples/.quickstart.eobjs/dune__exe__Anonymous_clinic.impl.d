examples/anonymous_clinic.ml: Array Format List Oasis_cert Oasis_core Oasis_domain Oasis_util Printf
