examples/trust_marketplace.ml: List Oasis_trust Oasis_util Printf
