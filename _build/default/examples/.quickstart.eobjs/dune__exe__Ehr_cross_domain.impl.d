examples/ehr_cross_domain.ml: Format Hashtbl List Oasis_cert Oasis_core Oasis_domain Oasis_policy Oasis_sim Oasis_util Option Printf String
