examples/accident_emergency.ml: Format List Oasis_cert Oasis_core Oasis_policy Oasis_util Printf
