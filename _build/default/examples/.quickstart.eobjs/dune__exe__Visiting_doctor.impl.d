examples/visiting_doctor.ml: Array Format List Oasis_cert Oasis_core Oasis_domain Oasis_policy Oasis_util Printf
