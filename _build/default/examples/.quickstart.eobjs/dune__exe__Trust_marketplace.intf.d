examples/trust_marketplace.mli:
