(* Untrusted environments and principals (Sect. 6).

   Run with: dune exec examples/trust_marketplace.exe

   Roving computational entities meet services they have never seen. Before
   proceeding, each side examines the other's accumulated audit certificates
   — validated at the issuing CIV registrars — and takes a calculated risk.
   We run the paper's speculation as a marketplace simulation: a Byzantine
   minority of services breach their contracts, and a collusion ring pads
   its history with certificates from a rogue registrar domain. Watch how
   decision accuracy evolves, and how discounting of misleading registrars
   defeats the collusion. *)

module Simulation = Oasis_trust.Simulation
module Audit = Oasis_trust.Audit
module Registrar = Oasis_trust.Registrar
module Assess = Oasis_trust.Assess
module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng

let banner title = Printf.printf "\n=== %s ===\n" title

let print_rounds ?(every = 5) result =
  Printf.printf "  round | accept good | accept bad | refuse good | refuse bad | accuracy | rogue weight\n";
  List.iter
    (fun (r : Simulation.round_stats) ->
      if r.round mod every = 0 || r.round = 1 then
        Printf.printf "  %5d | %11d | %10d | %11d | %10d | %8.2f | %12.3f\n" r.round
          r.proceeded_with_good r.proceeded_with_bad r.refused_good r.refused_bad r.accuracy
          r.mean_rogue_weight)
    result.Simulation.per_round;
  Printf.printf "  final accuracy (last quarter): %.3f\n" result.Simulation.final_accuracy

let () =
  banner "One interaction, by hand";
  let rng = Rng.create 99 in
  let registrar = Registrar.create rng ~name:"city-civ" () in
  let client = Ident.make "roving-agent" 1 and server = Ident.make "storage-service" 1 in
  (* Two honest interactions, then a dispute. *)
  let history =
    [
      Registrar.record_interaction registrar ~client ~server ~at:1.0
        ~client_outcome:Audit.Fulfilled ~server_outcome:Audit.Fulfilled;
      Registrar.record_interaction registrar ~client ~server ~at:2.0
        ~client_outcome:Audit.Fulfilled ~server_outcome:Audit.Fulfilled;
      Registrar.record_interaction registrar ~client ~server ~at:3.0
        ~client_outcome:Audit.Fulfilled ~server_outcome:Audit.Breached;
    ]
  in
  let assessor = Assess.create ~threshold:0.55 () in
  let verdict =
    Assess.assess assessor ~validate:(Registrar.validate registrar) ~subject:server
      ~presented:history
  in
  Printf.printf "  server's history: 2 fulfilled, 1 breached -> score %.3f, %s\n"
    verdict.Assess.score
    (if verdict.Assess.proceed then "proceed" else "refuse");

  banner "A healthy marketplace (25% Byzantine servers)";
  let params = { Simulation.default_params with rounds = 30 } in
  print_rounds (Simulation.run params);

  banner "A collusion ring pads its history via a rogue registrar";
  let collusion =
    {
      Simulation.default_params with
      byzantine_fraction = 0.1;
      colluder_fraction = 0.2;
      colluder_padding = 3;
      rounds = 30;
    }
  in
  Printf.printf "\n  -- with registrar discounting (the paper's 'domain of the auditing\n";
  Printf.printf "     service is a factor' made mechanical) --\n";
  print_rounds (Simulation.run { collusion with discounting = true });
  Printf.printf "\n  -- without discounting: fabricated histories keep working --\n";
  print_rounds (Simulation.run { collusion with discounting = false });

  banner "Strategic presentation: parties hide unfavourable certificates";
  let strategic = { collusion with favourable_presentation = true; discounting = true } in
  print_rounds (Simulation.run strategic);
  Printf.printf
    "\n  Withholding breach records slows detection — the paper's observation that\n\
    \  parties 'might collude to build up a false history' extends to curating\n\
    \  one's own. Registrar discounting still bites via contradicted testimony.\n"
