(* Time-of-day environmental constraints (Sect. 2).

   Run with: dune exec examples/night_shift.exe

   "Examples of user-independent constraints are the time of day ..." —
   and because OASIS security is ACTIVE, a time-of-day constraint in a
   membership rule does more than gate activation: the role deactivates
   itself the moment the window closes, with no request needed. We follow a
   junior doctor across a night shift: the role appears at 20:00, carries
   privileges through the night, and evaporates at 08:00 sharp. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Value = Oasis_util.Value

let hour h = h *. 3600.0

let clock_of world =
  let t = World.now world in
  Printf.sprintf "%02d:%02d" (int_of_float (t /. 3600.0) mod 24) (int_of_float (t /. 60.0) mod 60)

let attempt world label = function
  | Ok _ -> Printf.printf "  [%s] %s: granted\n" (clock_of world) label
  | Error d ->
      Printf.printf "  [%s] %s: DENIED (%s)\n" (clock_of world) label
        (Protocol.denial_to_string d)

let () =
  let world = World.create ~seed:23 () in
  let civ = Civ.create world ~name:"rota" () in
  let ward =
    Service.create world ~name:"ward"
      ~policy:
        {|
          initial junior(d) <- *appt:junior_rota(d)@rota;
          night_duty(d) <- *junior(d), *env:hour_between(20, 8);
          priv prescribe(d) <- night_duty(d);
        |}
      ()
  in
  let dara = Principal.create world ~name:"dr-dara" in
  Principal.grant_appointment dara
    (Civ.issue civ ~kind:"junior_rota"
       ~args:[ Value.Id (Principal.id dara) ]
       ~holder:(Principal.id dara) ~holder_key:(Principal.longterm_public dara) ());
  World.settle world;

  let session = Principal.start_session dara in
  (* 14:00 — daytime: the junior role works, night_duty does not. *)
  World.run_until world (hour 14.0);
  World.run_proc world (fun () ->
      attempt world "activate junior" (Principal.activate dara session ward ~role:"junior" ());
      attempt world "activate night_duty"
        (Principal.activate dara session ward ~role:"night_duty" ()));

  (* 20:30 — the window is open. *)
  World.run_until world (hour 20.5);
  World.run_proc world (fun () ->
      attempt world "activate night_duty"
        (Principal.activate dara session ward ~role:"night_duty" ());
      attempt world "prescribe"
        (Principal.invoke dara session ward ~privilege:"prescribe"
           ~args:[ Value.Id (Principal.id dara) ]));

  (* 03:00 — still on duty across midnight (a wrapping window). *)
  World.run_until world (hour 27.0);
  Printf.printf "  [%s] active roles on the ward: %d (night_duty survives midnight)\n"
    (clock_of world)
    (List.length (Service.active_roles ward));

  (* 08:00 — the membership monitor ends the shift; nobody sent anything. *)
  World.run_until world (hour 32.5);
  World.settle world;
  Printf.printf "  [%s] active roles on the ward: %d (night_duty self-deactivated at 08:00)\n"
    (clock_of world)
    (List.length (Service.active_roles ward));
  World.run_proc world (fun () ->
      attempt world "prescribe after shift"
        (Principal.invoke dara session ward ~privilege:"prescribe"
           ~args:[ Value.Id (Principal.id dara) ]))
