(* Static policy analysis: reachability, dead roles, cycles, typos. *)

module Analysis = Oasis_policy.Analysis
module Parser = Oasis_policy.Parser

let policy name ?kinds src =
  Analysis.of_statements ~name ?appointment_kinds:kinds (Parser.parse_exn src)

let spair : (string * string) Alcotest.testable = Alcotest.(pair string string)

let test_simple_reachability () =
  let hospital =
    policy "hospital" ~kinds:[ "employee"; "qualified" ]
      {|
        initial logged_in(u) <- appt:employee(u);
        doctor(u) <- *logged_in(u), appt:qualified(u);
        consultant(u) <- doctor(u), appt:fellowship(u);
        priv read(u) <- doctor(u);
        priv sign(u) <- consultant(u);
      |}
  in
  let report = Analysis.analyse [ hospital ] in
  Alcotest.(check (list spair)) "reachable"
    [ ("hospital", "doctor"); ("hospital", "logged_in") ]
    report.Analysis.reachable_roles;
  (* consultant needs a fellowship appointment the hospital cannot issue. *)
  Alcotest.(check (list spair)) "dead" [ ("hospital", "consultant") ] report.Analysis.dead_roles;
  Alcotest.(check (list spair)) "grantable" [ ("hospital", "read") ]
    report.Analysis.grantable_privileges;
  Alcotest.(check (list spair)) "dead privs" [ ("hospital", "sign") ]
    report.Analysis.dead_privileges;
  (* The dangling fellowship reference is reported. *)
  Alcotest.(check bool) "unknown appointment flagged" true
    (List.exists
       (function Analysis.Unknown_appointment { kind = "fellowship"; _ } -> true | _ -> false)
       report.Analysis.unresolved)

let test_held_appointments_matter () =
  let hospital =
    policy "hospital" ~kinds:[ "employee"; "qualified" ]
      {|
        initial logged_in(u) <- appt:employee(u);
        doctor(u) <- *logged_in(u), appt:qualified(u);
      |}
  in
  let report =
    Analysis.analyse ~held_appointments:[ ("hospital", "employee") ] [ hospital ]
  in
  Alcotest.(check (list spair)) "only login reachable" [ ("hospital", "logged_in") ]
    report.Analysis.reachable_roles;
  Alcotest.(check bool) "doctor not flagged unresolved" true
    (report.Analysis.unresolved = [])

let test_cross_service_reachability () =
  let a = policy "a" ~kinds:[ "card" ] "initial base(u) <- appt:card(u);" in
  let b = policy "b" "derived(u) <- base(u)@a;" in
  let report = Analysis.analyse [ a; b ] in
  Alcotest.(check (list spair)) "both reachable" [ ("a", "base"); ("b", "derived") ]
    report.Analysis.reachable_roles

let test_unknown_service_and_role () =
  let a = policy "a" "r(u) <- ghost(u)@nowhere, real(u)@b;" in
  let b = policy "b" "initial other <- env:eq(1, 1);" in
  let report = Analysis.analyse [ a; b ] in
  Alcotest.(check bool) "unknown service" true
    (List.exists
       (function Analysis.Unknown_service { service = "nowhere"; _ } -> true | _ -> false)
       report.Analysis.unresolved);
  Alcotest.(check bool) "unknown role" true
    (List.exists
       (function
         | Analysis.Unknown_role { service = "b"; role = "real"; _ } -> true | _ -> false)
       report.Analysis.unresolved);
  Alcotest.(check (list spair)) "r is dead" [ ("a", "r") ] report.Analysis.dead_roles

let test_cycle_detection () =
  let a =
    policy "a"
      {|
        initial seed <- env:eq(1, 1);
        x(u) <- y(u);
        y(u) <- x(u);
      |}
  in
  let report = Analysis.analyse [ a ] in
  Alcotest.(check int) "one cycle" 1 (List.length report.Analysis.prereq_cycles);
  (match report.Analysis.prereq_cycles with
  | [ cycle ] ->
      Alcotest.(check (list spair)) "members" [ ("a", "x"); ("a", "y") ] (List.sort compare cycle)
  | _ -> Alcotest.fail "expected one cycle");
  (* Cyclic roles are also dead: neither can be activated first. *)
  Alcotest.(check bool) "cycle implies dead" true
    (List.mem ("a", "x") report.Analysis.dead_roles && List.mem ("a", "y") report.Analysis.dead_roles)

let test_self_loop () =
  let a = policy "a" "x(u) <- x(u);" in
  let report = Analysis.analyse [ a ] in
  Alcotest.(check int) "self-loop is a cycle" 1 (List.length report.Analysis.prereq_cycles)

let test_constraints_assumed_satisfiable () =
  let a = policy "a" "initial gated <- env:impossible(1);" in
  let report = Analysis.analyse [ a ] in
  Alcotest.(check (list spair)) "env constraints don't kill reachability" [ ("a", "gated") ]
    report.Analysis.reachable_roles

let test_pp_smoke () =
  let a = policy "a" "initial r <- env:eq(1, 1);" in
  let report = Analysis.analyse [ a ] in
  Alcotest.(check bool) "prints" true
    (String.length (Format.asprintf "%a" Analysis.pp_report report) > 0)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "simple reachability" `Quick test_simple_reachability;
      Alcotest.test_case "held appointments" `Quick test_held_appointments_matter;
      Alcotest.test_case "cross-service" `Quick test_cross_service_reachability;
      Alcotest.test_case "unknown refs" `Quick test_unknown_service_and_role;
      Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
      Alcotest.test_case "self loop" `Quick test_self_loop;
      Alcotest.test_case "constraints satisfiable" `Quick test_constraints_assumed_satisfiable;
      Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    ] )
