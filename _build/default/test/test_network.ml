(* The simulated message-passing network. *)

module Engine = Oasis_sim.Engine
module Network = Oasis_sim.Network
module Proc = Oasis_sim.Proc
module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng

type msg = Ping | Pong | Echo of int | Echoed of int

let node_id n = Ident.make "node" n

let silent_handler = { Network.on_oneway = (fun ~src:_ _ -> ()); on_rpc = (fun ~src:_ m -> m) }

let make ?(latency = 1.0) () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 1) ~default_latency:latency () in
  (engine, net)

let test_oneway_delivery_and_latency () =
  let engine, net = make () in
  let received = ref None in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    {
      Network.on_oneway = (fun ~src:_ m -> received := Some (m, Engine.now engine));
      on_rpc = (fun ~src:_ m -> m);
    };
  Network.send net ~src:(node_id 0) ~dst:(node_id 1) Ping;
  Alcotest.(check bool) "not yet delivered" true (!received = None);
  Engine.run engine;
  (match !received with
  | Some (Ping, t) -> Alcotest.(check (float 1e-9)) "after latency" 1.0 t
  | _ -> Alcotest.fail "wrong delivery");
  let stats = Network.stats net in
  Alcotest.(check int) "sent" 1 stats.Network.sent;
  Alcotest.(check int) "delivered" 1 stats.Network.delivered

let test_rpc_roundtrip () =
  let engine, net = make () in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    {
      Network.on_oneway = (fun ~src:_ _ -> ());
      on_rpc = (fun ~src:_ m -> match m with Echo n -> Echoed (n + 1) | m -> m);
    };
  let result = ref None in
  Proc.spawn engine (fun () ->
      let reply = Network.rpc net ~src:(node_id 0) ~dst:(node_id 1) (Echo 41) in
      result := Some (reply, Engine.now engine));
  Engine.run engine;
  (match !result with
  | Some (Echoed 42, t) -> Alcotest.(check (float 1e-9)) "two legs" 2.0 t
  | _ -> Alcotest.fail "wrong rpc result");
  Alcotest.(check int) "rpcs counted" 1 (Network.stats net).Network.rpcs

let test_rpc_nested () =
  (* Node 1's handler performs its own RPC to node 2 — the Fig. 3 chain. *)
  let engine, net = make () in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    {
      Network.on_oneway = (fun ~src:_ _ -> ());
      on_rpc =
        (fun ~src:_ m ->
          match m with
          | Echo n -> Network.rpc net ~src:(node_id 1) ~dst:(node_id 2) (Echo (n * 10))
          | m -> m);
    };
  Network.add_node net (node_id 2)
    {
      Network.on_oneway = (fun ~src:_ _ -> ());
      on_rpc = (fun ~src:_ m -> match m with Echo n -> Echoed n | m -> m);
    };
  let result = ref None in
  Proc.spawn engine (fun () ->
      result := Some (Network.rpc net ~src:(node_id 0) ~dst:(node_id 1) (Echo 7)));
  Engine.run engine;
  (match !result with
  | Some (Echoed 70) -> ()
  | _ -> Alcotest.fail "nested rpc failed");
  Alcotest.(check (float 1e-9)) "four legs" 4.0 (Engine.now engine)

let test_unknown_destination_dropped () =
  let engine, net = make () in
  Network.add_node net (node_id 0) silent_handler;
  Network.send net ~src:(node_id 0) ~dst:(node_id 9) Ping;
  Engine.run engine;
  let stats = Network.stats net in
  Alcotest.(check int) "dropped" 1 stats.Network.dropped;
  Alcotest.(check int) "not delivered" 0 stats.Network.delivered

let test_down_node () =
  let engine, net = make () in
  let received = ref 0 in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    { Network.on_oneway = (fun ~src:_ _ -> incr received); on_rpc = (fun ~src:_ m -> m) };
  Network.set_down net (node_id 1) true;
  Alcotest.(check bool) "is_down" true (Network.is_down net (node_id 1));
  Network.send net ~src:(node_id 0) ~dst:(node_id 1) Ping;
  Engine.run engine;
  Alcotest.(check int) "down node got nothing" 0 !received;
  Network.set_down net (node_id 1) false;
  Network.send net ~src:(node_id 0) ~dst:(node_id 1) Ping;
  Engine.run engine;
  Alcotest.(check int) "healed node receives" 1 !received

let test_down_in_flight () =
  (* Node goes down after the message left: dropped at delivery time. *)
  let engine, net = make () in
  let received = ref 0 in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    { Network.on_oneway = (fun ~src:_ _ -> incr received); on_rpc = (fun ~src:_ m -> m) };
  Network.send net ~src:(node_id 0) ~dst:(node_id 1) Ping;
  ignore (Engine.schedule engine ~after:0.5 (fun () -> Network.set_down net (node_id 1) true));
  Engine.run engine;
  Alcotest.(check int) "dropped in flight" 0 !received

let test_rpc_to_dead_node_raises () =
  let engine, net = make () in
  Network.add_node net (node_id 0) silent_handler;
  let raised = ref false in
  Proc.spawn engine (fun () ->
      match Network.rpc net ~src:(node_id 0) ~dst:(node_id 9) Ping with
      | _ -> ()
      | exception Network.Rpc_dropped -> raised := true);
  Engine.run engine;
  Alcotest.(check bool) "Rpc_dropped" true !raised

let test_rpc_timeout () =
  let engine, net = make () in
  Network.add_node net (node_id 0) silent_handler;
  let timed_out = ref false in
  Proc.spawn engine (fun () ->
      match Network.rpc ~timeout:3.0 net ~src:(node_id 0) ~dst:(node_id 9) Ping with
      | _ -> ()
      | exception Proc.Timeout -> timed_out := true);
  Engine.run engine;
  Alcotest.(check bool) "timeout" true !timed_out;
  Alcotest.(check (float 1e-9)) "after timeout" 3.0 (Engine.now engine)

let test_lossy_link () =
  let engine, net = make () in
  let received = ref 0 in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    { Network.on_oneway = (fun ~src:_ _ -> incr received); on_rpc = (fun ~src:_ m -> m) };
  Network.set_link net (node_id 0) (node_id 1) ~latency:0.1 ~loss:0.5 ();
  for _ = 1 to 200 do
    Network.send net ~src:(node_id 0) ~dst:(node_id 1) Ping
  done;
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "roughly half lost (%d)" !received)
    true
    (!received > 60 && !received < 140);
  let stats = Network.stats net in
  Alcotest.(check int) "conservation" 200 (stats.Network.delivered + stats.Network.dropped)

let test_link_override_latency () =
  let engine, net = make ~latency:5.0 () in
  let at = ref 0.0 in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    {
      Network.on_oneway = (fun ~src:_ _ -> at := Engine.now engine);
      on_rpc = (fun ~src:_ m -> m);
    };
  Network.set_link net (node_id 0) (node_id 1) ~latency:0.25 ();
  Network.send net ~src:(node_id 0) ~dst:(node_id 1) Ping;
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "override latency" 0.25 !at

let test_duplicate_node_raises () =
  let _, net = make () in
  Network.add_node net (node_id 0) silent_handler;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Network.add_node: node#0 already registered") (fun () ->
      Network.add_node net (node_id 0) silent_handler)

let test_fifo_per_link () =
  (* Constant latency implies per-link FIFO delivery. *)
  let engine, net = make () in
  let log = ref [] in
  Network.add_node net (node_id 0) silent_handler;
  Network.add_node net (node_id 1)
    {
      Network.on_oneway = (fun ~src:_ m -> match m with Echo n -> log := n :: !log | _ -> ());
      on_rpc = (fun ~src:_ m -> m);
    };
  for i = 1 to 10 do
    Network.send net ~src:(node_id 0) ~dst:(node_id 1) (Echo i)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !log)

let suite =
  ( "network",
    [
      Alcotest.test_case "oneway delivery" `Quick test_oneway_delivery_and_latency;
      Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
      Alcotest.test_case "rpc nested" `Quick test_rpc_nested;
      Alcotest.test_case "unknown destination" `Quick test_unknown_destination_dropped;
      Alcotest.test_case "down node" `Quick test_down_node;
      Alcotest.test_case "down in flight" `Quick test_down_in_flight;
      Alcotest.test_case "rpc to dead node" `Quick test_rpc_to_dead_node_raises;
      Alcotest.test_case "rpc timeout" `Quick test_rpc_timeout;
      Alcotest.test_case "lossy link" `Quick test_lossy_link;
      Alcotest.test_case "link override" `Quick test_link_override_latency;
      Alcotest.test_case "duplicate node" `Quick test_duplicate_node_raises;
      Alcotest.test_case "fifo per link" `Quick test_fifo_per_link;
    ] )
