(* Hybrid payload encryption (Sect. 4 encrypted communication). *)

module Sealed = Oasis_crypto.Sealed
module Elgamal = Oasis_crypto.Elgamal
module Rng = Oasis_util.Rng

let rng () = Rng.create 31

let test_roundtrip () =
  let rng = rng () in
  let kp = Elgamal.generate rng in
  List.iter
    (fun payload ->
      let sealed = Sealed.seal rng kp.Elgamal.public payload in
      match Sealed.reveal kp.Elgamal.private_key sealed with
      | Some plain -> Alcotest.(check string) "roundtrip" payload plain
      | None -> Alcotest.fail "reveal failed")
    [ ""; "x"; "hello world"; String.make 31 'a'; String.make 32 'b'; String.make 1000 'c' ]

let test_roundtrip_qcheck () =
  let rng = rng () in
  let kp = Elgamal.generate rng in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"seal/reveal"
       QCheck.(string_of_size Gen.(int_bound 300))
       (fun payload ->
         Sealed.reveal kp.Elgamal.private_key (Sealed.seal rng kp.Elgamal.public payload)
         = Some payload))

let test_wrong_key () =
  let rng = rng () in
  let kp = Elgamal.generate rng and other = Elgamal.generate rng in
  let sealed = Sealed.seal rng kp.Elgamal.public "confidential" in
  Alcotest.(check bool) "wrong key rejected" true
    (Sealed.reveal other.Elgamal.private_key sealed = None)

let test_ciphertext_hides_plaintext () =
  let rng = rng () in
  let kp = Elgamal.generate rng in
  let payload = "PATIENT RECORD 1005" in
  let sealed = Sealed.seal rng kp.Elgamal.public payload in
  (* The wire bytes must not contain the plaintext. *)
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "body opaque" false (contains sealed.Sealed.body payload);
  (* Sealing the same payload twice yields different ciphertexts. *)
  let sealed2 = Sealed.seal rng kp.Elgamal.public payload in
  Alcotest.(check bool) "probabilistic" false (String.equal sealed.Sealed.body sealed2.Sealed.body)

let test_tampering_detected () =
  let rng = rng () in
  let kp = Elgamal.generate rng in
  let sealed = Sealed.seal rng kp.Elgamal.public "append-to-EHR: penicillin 250mg" in
  (* Flip every body byte in turn: MAC must catch each. *)
  String.iteri
    (fun i _ ->
      let body = Bytes.of_string sealed.Sealed.body in
      Bytes.set body i (Char.chr (Char.code (Bytes.get body i) lxor 1));
      let forged = { sealed with Sealed.body = Bytes.to_string body } in
      if Sealed.reveal kp.Elgamal.private_key forged <> None then
        Alcotest.failf "bit flip at %d undetected" i)
    sealed.Sealed.body;
  (* Tampering with the encapsulation is caught too. *)
  let forged = { sealed with Sealed.kem = { sealed.Sealed.kem with Elgamal.c2 = 12345L } } in
  Alcotest.(check bool) "kem tamper" true (Sealed.reveal kp.Elgamal.private_key forged = None)

let test_size_accounting () =
  let rng = rng () in
  let kp = Elgamal.generate rng in
  let sealed = Sealed.seal rng kp.Elgamal.public (String.make 100 'x') in
  Alcotest.(check int) "size" (16 + 100 + 32) (Sealed.size_bytes sealed)

let suite =
  ( "sealed",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "roundtrip (qcheck)" `Quick test_roundtrip_qcheck;
      Alcotest.test_case "wrong key" `Quick test_wrong_key;
      Alcotest.test_case "opacity" `Quick test_ciphertext_hides_plaintext;
      Alcotest.test_case "tampering" `Quick test_tampering_detected;
      Alcotest.test_case "size" `Quick test_size_accounting;
    ] )
