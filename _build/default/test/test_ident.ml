module Ident = Oasis_util.Ident

let ident = Alcotest.testable Ident.pp Ident.equal

let test_roundtrip () =
  let id = Ident.make "service" 42 in
  Alcotest.(check string) "to_string" "service#42" (Ident.to_string id);
  Alcotest.(check (option ident)) "of_string" (Some id) (Ident.of_string "service#42")

let test_of_string_rejects () =
  List.iter
    (fun s -> Alcotest.(check (option ident)) s None (Ident.of_string s))
    [ ""; "plain"; "#1"; "a#"; "a#x"; "a#-3" ]

let test_of_string_nested_hash () =
  (* rindex: the tag may itself contain '#'. *)
  match Ident.of_string "a#b#3" with
  | Some id ->
      Alcotest.(check string) "tag" "a#b" (Ident.tag id);
      Alcotest.(check int) "number" 3 (Ident.number id)
  | None -> Alcotest.fail "expected parse"

let test_ordering () =
  let a = Ident.make "a" 2 and b = Ident.make "b" 1 in
  Alcotest.(check bool) "tag dominates" true (Ident.compare a b < 0);
  Alcotest.(check bool) "number breaks ties" true
    (Ident.compare (Ident.make "x" 1) (Ident.make "x" 2) < 0);
  Alcotest.(check int) "equal" 0 (Ident.compare a (Ident.make "a" 2))

let test_generator () =
  let g = Ident.generator "t" in
  let a = Ident.fresh g and b = Ident.fresh g in
  Alcotest.(check bool) "fresh differ" false (Ident.equal a b);
  Alcotest.(check int) "sequential" 0 (Ident.number a);
  Alcotest.(check int) "sequential 2" 1 (Ident.number b)

let test_generators_independent () =
  let g1 = Ident.generator "x" and g2 = Ident.generator "x" in
  let a = Ident.fresh g1 in
  let b = Ident.fresh g2 in
  Alcotest.(check bool) "equal by value" true (Ident.equal a b)

let test_containers () =
  let a = Ident.make "p" 1 and b = Ident.make "p" 2 in
  let set = Ident.Set.of_list [ a; b; a ] in
  Alcotest.(check int) "set dedup" 2 (Ident.Set.cardinal set);
  let map = Ident.Map.(empty |> add a 1 |> add b 2) in
  Alcotest.(check (option int)) "map find" (Some 2) (Ident.Map.find_opt b map);
  let tbl = Ident.Tbl.create 4 in
  Ident.Tbl.replace tbl a "x";
  Alcotest.(check (option string)) "tbl find" (Some "x") (Ident.Tbl.find_opt tbl a)

let test_hash_consistent () =
  let a = Ident.make "h" 5 and b = Ident.make "h" 5 in
  Alcotest.(check int) "equal values hash equally" (Ident.hash a) (Ident.hash b)

let suite =
  ( "ident",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "of_string rejects" `Quick test_of_string_rejects;
      Alcotest.test_case "nested hash" `Quick test_of_string_nested_hash;
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "generator" `Quick test_generator;
      Alcotest.test_case "generators independent" `Quick test_generators_independent;
      Alcotest.test_case "containers" `Quick test_containers;
      Alcotest.test_case "hash consistent" `Quick test_hash_consistent;
    ] )
