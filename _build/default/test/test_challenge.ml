(* The ISO/9798-style challenge-response protocol and the ElGamal layer. *)

module Elgamal = Oasis_crypto.Elgamal
module Challenge = Oasis_crypto.Challenge
module Modp = Oasis_crypto.Modp
module Rng = Oasis_util.Rng

let test_elgamal_roundtrip () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let kp = Elgamal.generate rng in
    let m = Modp.random rng in
    let c = Elgamal.encrypt rng kp.Elgamal.public m in
    Alcotest.(check int64) "decrypt" m (Elgamal.decrypt kp.Elgamal.private_key c)
  done

let test_elgamal_wrong_key () =
  let rng = Rng.create 2 in
  let kp1 = Elgamal.generate rng and kp2 = Elgamal.generate rng in
  let m = 123456789L in
  let c = Elgamal.encrypt rng kp1.Elgamal.public m in
  Alcotest.(check bool) "wrong key garbles" false
    (Int64.equal m (Elgamal.decrypt kp2.Elgamal.private_key c))

let test_elgamal_probabilistic () =
  let rng = Rng.create 3 in
  let kp = Elgamal.generate rng in
  let c1 = Elgamal.encrypt rng kp.Elgamal.public 42L in
  let c2 = Elgamal.encrypt rng kp.Elgamal.public 42L in
  Alcotest.(check bool) "fresh randomness per encryption" false
    (c1.Elgamal.c1 = c2.Elgamal.c1 && c1.Elgamal.c2 = c2.Elgamal.c2)

let test_public_string_roundtrip () =
  let rng = Rng.create 4 in
  let kp = Elgamal.generate rng in
  (match Elgamal.public_of_string (Elgamal.public_to_string kp.Elgamal.public) with
  | Some p -> Alcotest.(check int64) "roundtrip" kp.Elgamal.public p
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check bool) "garbage rejected" true (Elgamal.public_of_string "nonsense" = None);
  Alcotest.(check bool) "zero rejected" true (Elgamal.public_of_string "0" = None);
  Alcotest.(check bool) "p rejected" true
    (Elgamal.public_of_string (Int64.to_string Modp.p) = None)

let test_proves () =
  let rng = Rng.create 5 in
  let kp1 = Elgamal.generate rng and kp2 = Elgamal.generate rng in
  Alcotest.(check bool) "own key" true (Elgamal.proves kp1.Elgamal.private_key kp1.Elgamal.public);
  Alcotest.(check bool) "other key" false
    (Elgamal.proves kp1.Elgamal.private_key kp2.Elgamal.public)

let test_challenge_success () =
  let rng = Rng.create 6 in
  let kp = Elgamal.generate rng in
  let challenge, pending = Challenge.issue rng kp.Elgamal.public in
  let response = Challenge.respond kp.Elgamal.private_key challenge in
  Alcotest.(check bool) "accepted" true (Challenge.check pending response)

let test_challenge_wrong_key_fails () =
  let rng = Rng.create 7 in
  let kp = Elgamal.generate rng and thief = Elgamal.generate rng in
  let challenge, pending = Challenge.issue rng kp.Elgamal.public in
  let response = Challenge.respond thief.Elgamal.private_key challenge in
  Alcotest.(check bool) "rejected" false (Challenge.check pending response)

let test_challenge_single_use () =
  let rng = Rng.create 8 in
  let kp = Elgamal.generate rng in
  let challenge, pending = Challenge.issue rng kp.Elgamal.public in
  let response = Challenge.respond kp.Elgamal.private_key challenge in
  Alcotest.(check bool) "first check" true (Challenge.check pending response);
  Alcotest.(check bool) "replay rejected" false (Challenge.check pending response)

let test_challenge_garbage_fails () =
  let rng = Rng.create 9 in
  let kp = Elgamal.generate rng in
  let _, pending = Challenge.issue rng kp.Elgamal.public in
  Alcotest.(check bool) "garbage rejected" false (Challenge.check pending "not a response");
  let _, pending2 = Challenge.issue rng kp.Elgamal.public in
  Alcotest.(check bool) "empty rejected" false (Challenge.check pending2 "")

let test_challenge_nonce_binds () =
  (* A response computed against a different nonce must fail even with the
     right private key. *)
  let rng = Rng.create 10 in
  let kp = Elgamal.generate rng in
  let challenge, pending = Challenge.issue rng kp.Elgamal.public in
  let tampered = { challenge with Challenge.nonce = String.make 16 'x' } in
  let response = Challenge.respond kp.Elgamal.private_key tampered in
  Alcotest.(check bool) "nonce mismatch rejected" false (Challenge.check pending response)

let suite =
  ( "challenge",
    [
      Alcotest.test_case "elgamal roundtrip" `Quick test_elgamal_roundtrip;
      Alcotest.test_case "elgamal wrong key" `Quick test_elgamal_wrong_key;
      Alcotest.test_case "elgamal probabilistic" `Quick test_elgamal_probabilistic;
      Alcotest.test_case "public key string" `Quick test_public_string_roundtrip;
      Alcotest.test_case "proves" `Quick test_proves;
      Alcotest.test_case "challenge success" `Quick test_challenge_success;
      Alcotest.test_case "wrong key fails" `Quick test_challenge_wrong_key_fails;
      Alcotest.test_case "single use" `Quick test_challenge_single_use;
      Alcotest.test_case "garbage fails" `Quick test_challenge_garbage_fails;
      Alcotest.test_case "nonce binds" `Quick test_challenge_nonce_binds;
    ] )
