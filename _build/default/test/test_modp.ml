(* Field axioms for GF(2^61 - 1), checked by property testing. *)

module Modp = Oasis_crypto.Modp
module Rng = Oasis_util.Rng

let elements n =
  let rng = Rng.create 99 in
  List.init n (fun _ -> Modp.random rng)
  @ [ 1L; 2L; Int64.sub Modp.p 1L; Int64.sub Modp.p 2L ]

let test_reduce_canonical () =
  Alcotest.(check int64) "p reduces to 0" 0L (Modp.of_int64 Modp.p);
  Alcotest.(check int64) "p+1 reduces to 1" 1L (Modp.of_int64 (Int64.add Modp.p 1L));
  Alcotest.(check int64) "negative wraps" (Int64.sub Modp.p 1L) (Modp.of_int64 (-1L))

let test_add_sub_inverse () =
  let xs = elements 30 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let s = Modp.add a b in
          Alcotest.(check int64) "sub undoes add" a (Modp.sub s b))
        xs)
    xs

let test_mul_commutative () =
  let xs = elements 30 in
  List.iter
    (fun a -> List.iter (fun b -> Alcotest.(check int64) "ab=ba" (Modp.mul a b) (Modp.mul b a)) xs)
    xs

let test_mul_associative () =
  let xs = elements 12 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              Alcotest.(check int64) "(ab)c=a(bc)"
                (Modp.mul (Modp.mul a b) c)
                (Modp.mul a (Modp.mul b c)))
            xs)
        xs)
    xs

let test_distributive () =
  let xs = elements 12 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              Alcotest.(check int64) "a(b+c)=ab+ac"
                (Modp.mul a (Modp.add b c))
                (Modp.add (Modp.mul a b) (Modp.mul a c)))
            xs)
        xs)
    xs

let test_mul_matches_small_reference () =
  (* For operands below 2^31 the product fits in an int64 exactly. *)
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let a = Int64.of_int (Rng.int rng 0x7FFFFFFF) in
    let b = Int64.of_int (Rng.int rng 0x7FFFFFFF) in
    let expected = Int64.rem (Int64.mul a b) Modp.p in
    Alcotest.(check int64) "small product" expected (Modp.mul a b)
  done

let test_inverse () =
  List.iter
    (fun a -> Alcotest.(check int64) "a * a^-1 = 1" 1L (Modp.mul a (Modp.inv a)))
    (elements 50)

let test_inv_zero_raises () =
  Alcotest.check_raises "inv 0" (Invalid_argument "Modp.inv: zero has no inverse") (fun () ->
      ignore (Modp.inv 0L))

let test_fermat () =
  List.iter
    (fun a -> Alcotest.(check int64) "a^(p-1) = 1" 1L (Modp.pow a (Int64.sub Modp.p 1L)))
    (elements 10)

let test_pow_laws () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let a = Modp.random rng in
    let x = Int64.of_int (Rng.int rng 1000) and y = Int64.of_int (Rng.int rng 1000) in
    Alcotest.(check int64) "a^(x+y) = a^x a^y"
      (Modp.pow a (Int64.add x y))
      (Modp.mul (Modp.pow a x) (Modp.pow a y))
  done

let test_pow_edge () =
  Alcotest.(check int64) "a^0 = 1" 1L (Modp.pow 12345L 0L);
  Alcotest.(check int64) "a^1 = a" 12345L (Modp.pow 12345L 1L);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Modp.pow: negative exponent")
    (fun () -> ignore (Modp.pow 2L (-1L)))

let test_random_in_range () =
  let rng = Rng.create 77 in
  for _ = 1 to 1000 do
    let x = Modp.random rng in
    if x <= 0L || x >= Modp.p then Alcotest.failf "out of range: %Ld" x
  done

let suite =
  ( "modp",
    [
      Alcotest.test_case "canonical reduction" `Quick test_reduce_canonical;
      Alcotest.test_case "add/sub inverse" `Quick test_add_sub_inverse;
      Alcotest.test_case "mul commutative" `Quick test_mul_commutative;
      Alcotest.test_case "mul associative" `Quick test_mul_associative;
      Alcotest.test_case "distributive" `Quick test_distributive;
      Alcotest.test_case "small reference" `Quick test_mul_matches_small_reference;
      Alcotest.test_case "inverse" `Quick test_inverse;
      Alcotest.test_case "inv zero" `Quick test_inv_zero_raises;
      Alcotest.test_case "Fermat" `Quick test_fermat;
      Alcotest.test_case "pow laws" `Quick test_pow_laws;
      Alcotest.test_case "pow edge cases" `Quick test_pow_edge;
      Alcotest.test_case "random range" `Quick test_random_in_range;
    ] )
