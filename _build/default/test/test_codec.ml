(* Certificate marshalling: round trips and adversarial bytes. *)

module Codec = Oasis_cert.Codec
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Secret = Oasis_crypto.Secret
module Sha256 = Oasis_crypto.Sha256
module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

let secret = Secret.of_string "codec-secret-0123456789abcdef012"

(* qcheck generators for certificate contents *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) small_signed_int;
        map (fun s -> Value.Str s) (string_size (int_bound 20));
        map (fun b -> Value.Bool b) bool;
        map (fun f -> Value.Time (float_of_int f /. 8.0)) (int_bound 10_000);
        map2 (fun t n -> Value.Id (Ident.make ("t" ^ string_of_int t) n)) (int_bound 5) (int_bound 1000);
      ])

let rmc_gen =
  QCheck.Gen.(
    map
      (fun (idn, issn, role, args, t, key) ->
        Rmc.issue ~secret ~principal_key:key ~id:(Ident.make "cert" idn)
          ~issuer:(Ident.make "service" issn) ~role ~args
          ~issued_at:(float_of_int t /. 4.0))
      (tup6 (int_bound 10_000) (int_bound 100) (string_size ~gen:(char_range 'a' 'z') (int_range 1 15))
         (list_size (int_bound 6) value_gen)
         (int_bound 100_000) (string_size (int_bound 40))))

let appt_gen =
  QCheck.Gen.(
    map
      (fun (idn, kind, args, holder, epoch, expiry) ->
        Appointment.issue ~master_secret:secret ~epoch ~id:(Ident.make "cert" idn)
          ~issuer:(Ident.make "service" 7) ~kind ~args ~holder ~issued_at:1.0
          ?expires_at:(if expiry = 0 then None else Some (float_of_int expiry))
          ())
      (tup6 (int_bound 10_000) (string_size ~gen:(char_range 'a' 'z') (int_range 1 15))
         (list_size (int_bound 6) value_gen)
         (string_size (int_bound 30))
         (int_bound 5) (int_bound 1000)))

let rmc_equal (a : Rmc.t) (b : Rmc.t) =
  Ident.equal a.id b.id && Ident.equal a.issuer b.issuer && String.equal a.role b.role
  && List.length a.args = List.length b.args
  && List.for_all2 Value.equal a.args b.args
  && Float.equal a.issued_at b.issued_at
  && Sha256.equal a.signature b.signature

let appt_equal (a : Appointment.t) (b : Appointment.t) =
  Ident.equal a.id b.id && Ident.equal a.issuer b.issuer && String.equal a.kind b.kind
  && List.for_all2 Value.equal a.args b.args
  && String.equal a.holder b.holder
  && Float.equal a.issued_at b.issued_at
  && a.expires_at = b.expires_at && a.epoch = b.epoch
  && Sha256.equal a.signature b.signature

let test_rmc_roundtrip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"rmc roundtrip" (QCheck.make rmc_gen) (fun rmc ->
         match Codec.rmc_of_string (Codec.rmc_to_string rmc) with
         | Ok decoded -> rmc_equal rmc decoded
         | Error _ -> false))

let test_appt_roundtrip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"appt roundtrip" (QCheck.make appt_gen) (fun appt ->
         match Codec.appointment_of_string (Codec.appointment_to_string appt) with
         | Ok decoded -> appt_equal appt decoded
         | Error _ -> false))

let test_roundtrip_preserves_verification () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"decoded rmc verifies" (QCheck.make rmc_gen) (fun rmc ->
         (* Verification must not depend on in-memory provenance. *)
         match Codec.rmc_of_string (Codec.rmc_to_string rmc) with
         | Ok decoded ->
             Rmc.verify ~secret ~principal_key:"k" decoded
             = Rmc.verify ~secret ~principal_key:"k" rmc
         | Error _ -> false))

let test_decoder_total_on_truncation () =
  let sample =
    Codec.rmc_to_string
      (Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 1)
         ~issuer:(Ident.make "service" 1) ~role:"doctor"
         ~args:[ Value.Int 1; Value.Str "x" ]
         ~issued_at:3.0)
  in
  for len = 0 to String.length sample - 1 do
    match Codec.rmc_of_string (String.sub sample 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d decoded" len
    | Error _ -> ()
  done

let test_decoder_total_on_mutation () =
  (* Byte flips either decode to different fields or error — never raise.
     (Signature bytes may flip without breaking framing; verification is
     what catches that, not the decoder.) *)
  let sample =
    Codec.appointment_to_string
      (Appointment.issue ~master_secret:secret ~epoch:1 ~id:(Ident.make "cert" 2)
         ~issuer:(Ident.make "service" 1) ~kind:"member"
         ~args:[ Value.Bool true ]
         ~holder:"h" ~issued_at:0.0 ~expires_at:9.0 ())
  in
  for i = 0 to String.length sample - 1 do
    let mutated = Bytes.of_string sample in
    Bytes.set mutated i (Char.chr ((Char.code sample.[i] + 1) land 0xff));
    ignore (Codec.appointment_of_string (Bytes.to_string mutated))
  done

let test_decoder_random_garbage () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"garbage never raises"
       QCheck.(string_of_size Gen.(int_bound 300))
       (fun s ->
         (match Codec.rmc_of_string s with Ok _ | Error _ -> ());
         (match Codec.appointment_of_string s with Ok _ | Error _ -> ());
         true))

let test_kind_confusion_rejected () =
  (* An appointment's bytes must not decode as an RMC. *)
  let appt_bytes =
    Codec.appointment_to_string
      (Appointment.issue ~master_secret:secret ~epoch:0 ~id:(Ident.make "cert" 3)
         ~issuer:(Ident.make "service" 1) ~kind:"member" ~args:[] ~holder:"h" ~issued_at:0.0 ())
  in
  (match Codec.rmc_of_string appt_bytes with
  | Ok _ -> Alcotest.fail "kind confusion"
  | Error _ -> ());
  let rmc_bytes =
    Codec.rmc_to_string
      (Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 4)
         ~issuer:(Ident.make "service" 1) ~role:"r" ~args:[] ~issued_at:0.0)
  in
  match Codec.appointment_of_string rmc_bytes with
  | Ok _ -> Alcotest.fail "kind confusion"
  | Error _ -> ()

let test_trailing_bytes_rejected () =
  let sample =
    Codec.rmc_to_string
      (Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 5)
         ~issuer:(Ident.make "service" 1) ~role:"r" ~args:[] ~issued_at:0.0)
  in
  match Codec.rmc_of_string (sample ^ "extra") with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error _ -> ()

let test_size_matches_encoding () =
  let rmc =
    Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 6)
      ~issuer:(Ident.make "service" 1) ~role:"doctor"
      ~args:[ Value.Int 1 ]
      ~issued_at:0.0
  in
  (* size_bytes = fields + 32-byte signature; the codec encodes the signature
     as a string field (a few bytes of framing). They must agree closely. *)
  let encoded = String.length (Codec.rmc_to_string rmc) in
  let claimed = Rmc.size_bytes rmc in
  Alcotest.(check bool)
    (Printf.sprintf "within framing slack (%d vs %d)" encoded claimed)
    true
    (abs (encoded - claimed) < 16)

let suite =
  ( "codec",
    [
      Alcotest.test_case "rmc roundtrip (qcheck)" `Quick test_rmc_roundtrip;
      Alcotest.test_case "appt roundtrip (qcheck)" `Quick test_appt_roundtrip;
      Alcotest.test_case "verification invariant" `Quick test_roundtrip_preserves_verification;
      Alcotest.test_case "truncation totality" `Quick test_decoder_total_on_truncation;
      Alcotest.test_case "mutation totality" `Quick test_decoder_total_on_mutation;
      Alcotest.test_case "garbage totality (qcheck)" `Quick test_decoder_random_garbage;
      Alcotest.test_case "kind confusion" `Quick test_kind_confusion_rejected;
      Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
      Alcotest.test_case "size accounting" `Quick test_size_matches_encoding;
    ] )
