(* FIPS 180-4 vectors plus incremental-feeding properties. *)

module Sha256 = Oasis_crypto.Sha256

let hex s = Sha256.to_hex (Sha256.digest_string s)

let test_fips_vectors () =
  Alcotest.(check string) "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex "");
  Alcotest.(check string) "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex "abc");
  Alcotest.(check string) "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "448-bit boundary"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (hex "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_million_a () =
  let ctx = Sha256.init () in
  for _ = 1 to 10_000 do
    Sha256.feed_string ctx (String.make 100 'a')
  done;
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.to_hex (Sha256.finalize ctx))

let test_incremental_equals_oneshot () =
  let property (chunks : string list) =
    let whole = String.concat "" chunks in
    let ctx = Sha256.init () in
    List.iter (Sha256.feed_string ctx) chunks;
    Sha256.equal (Sha256.finalize ctx) (Sha256.digest_string whole)
  in
  let gen = QCheck.(list_of_size Gen.(int_bound 8) (string_of_size Gen.(int_bound 200))) in
  QCheck.Test.check_exn (QCheck.Test.make ~count:200 ~name:"incremental = oneshot" gen property)

let test_padding_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding edges. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      Sha256.feed_string ctx s;
      Alcotest.(check bool)
        (Printf.sprintf "len %d" n)
        true
        (Sha256.equal (Sha256.finalize ctx) (Sha256.digest_string s)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128 ]

let test_finalize_twice_raises () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "finalize twice" (Invalid_argument "Sha256: context already finalized")
    (fun () -> ignore (Sha256.finalize ctx))

let test_feed_after_finalize_raises () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "feed after finalize" (Invalid_argument "Sha256: context already finalized")
    (fun () -> Sha256.feed_string ctx "x")

let test_raw_string () =
  let d = Sha256.digest_string "abc" in
  let raw = Sha256.to_raw_string d in
  Alcotest.(check int) "32 bytes" 32 (String.length raw);
  (match Sha256.of_raw_string raw with
  | Some d2 -> Alcotest.(check bool) "roundtrip" true (Sha256.equal d d2)
  | None -> Alcotest.fail "of_raw_string failed");
  Alcotest.(check bool) "wrong size rejected" true (Sha256.of_raw_string "short" = None)

let test_equal_constant_time_semantics () =
  let a = Sha256.digest_string "a" and b = Sha256.digest_string "b" in
  Alcotest.(check bool) "unequal digests" false (Sha256.equal a b);
  Alcotest.(check bool) "equal digests" true (Sha256.equal a (Sha256.digest_string "a"))

let test_avalanche () =
  (* One flipped bit changes roughly half the output bits. *)
  let d1 = Sha256.to_raw_string (Sha256.digest_string "avalanche0")
  and d2 = Sha256.to_raw_string (Sha256.digest_string "avalanche1") in
  let diff = ref 0 in
  String.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code d2.[i] in
      for bit = 0 to 7 do
        if x land (1 lsl bit) <> 0 then incr diff
      done)
    d1;
  Alcotest.(check bool) (Printf.sprintf "bit diff %d" !diff) true (!diff > 80 && !diff < 176)

let suite =
  ( "sha256",
    [
      Alcotest.test_case "FIPS vectors" `Quick test_fips_vectors;
      Alcotest.test_case "million a" `Slow test_million_a;
      Alcotest.test_case "incremental = oneshot (qcheck)" `Quick test_incremental_equals_oneshot;
      Alcotest.test_case "padding boundaries" `Quick test_padding_boundaries;
      Alcotest.test_case "finalize twice" `Quick test_finalize_twice_raises;
      Alcotest.test_case "feed after finalize" `Quick test_feed_after_finalize_raises;
      Alcotest.test_case "raw string" `Quick test_raw_string;
      Alcotest.test_case "equality" `Quick test_equal_constant_time_semantics;
      Alcotest.test_case "avalanche" `Quick test_avalanche;
    ] )
