(* Terms, substitutions, environment predicates and rules. *)

module Term = Oasis_policy.Term
module Env = Oasis_policy.Env
module Rule = Oasis_policy.Rule
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident
module Clock = Oasis_util.Clock

let value = Alcotest.testable Value.pp Value.equal

(* ---------------- Terms ---------------- *)

let test_unify_var_binds () =
  match Term.unify Term.Subst.empty (Term.Var "x") (Value.Int 3) with
  | Some subst -> Alcotest.(check (option value)) "bound" (Some (Value.Int 3)) (Term.Subst.find subst "x")
  | None -> Alcotest.fail "unification failed"

let test_unify_const () =
  Alcotest.(check bool) "matching const" true
    (Term.unify Term.Subst.empty (Term.Const (Value.Int 3)) (Value.Int 3) <> None);
  Alcotest.(check bool) "clashing const" true
    (Term.unify Term.Subst.empty (Term.Const (Value.Int 3)) (Value.Int 4) = None)

let test_unify_repeated_var () =
  (* x unified against 3 then against 4 must fail; against 3 twice succeeds. *)
  let s = Option.get (Term.unify Term.Subst.empty (Term.Var "x") (Value.Int 3)) in
  Alcotest.(check bool) "consistent rebind" true (Term.unify s (Term.Var "x") (Value.Int 3) <> None);
  Alcotest.(check bool) "clash" true (Term.unify s (Term.Var "x") (Value.Int 4) = None)

let test_unify_args () =
  let terms = [ Term.Var "a"; Term.Const (Value.Str "k"); Term.Var "a" ] in
  (match Term.unify_args Term.Subst.empty terms [ Value.Int 1; Value.Str "k"; Value.Int 1 ] with
  | Some _ -> ()
  | None -> Alcotest.fail "should unify");
  Alcotest.(check bool) "repeated var clash" true
    (Term.unify_args Term.Subst.empty terms [ Value.Int 1; Value.Str "k"; Value.Int 2 ] = None);
  Alcotest.(check bool) "arity mismatch" true
    (Term.unify_args Term.Subst.empty terms [ Value.Int 1 ] = None)

let test_apply_ground () =
  let s = Option.get (Term.unify Term.Subst.empty (Term.Var "x") (Value.Int 3)) in
  Alcotest.(check bool) "apply substitutes" true
    (Term.equal (Term.apply s (Term.Var "x")) (Term.Const (Value.Int 3)));
  Alcotest.(check bool) "apply leaves free" true
    (Term.equal (Term.apply s (Term.Var "y")) (Term.Var "y"));
  Alcotest.(check (option value)) "ground bound" (Some (Value.Int 3)) (Term.ground s (Term.Var "x"));
  Alcotest.(check (option value)) "ground free" None (Term.ground s (Term.Var "y"))

let test_vars_order_dedup () =
  let vars = Term.vars [ Term.Var "b"; Term.Const (Value.Int 1); Term.Var "a"; Term.Var "b" ] in
  Alcotest.(check (list string)) "first-occurrence order" [ "b"; "a" ] vars

(* ---------------- Env ---------------- *)

let make_env ?(start = 0.0) () =
  let clock = Clock.manual ~start () in
  (clock, Env.create clock)

let test_facts () =
  let _, env = make_env () in
  let args = [ Value.Int 1; Value.Str "x" ] in
  Env.assert_fact env "p" args;
  Alcotest.(check bool) "holds" true (Env.check env "p" args);
  Alcotest.(check bool) "other tuple" false (Env.check env "p" [ Value.Int 2; Value.Str "x" ]);
  Env.retract_fact env "p" args;
  Alcotest.(check bool) "retracted" false (Env.check env "p" args)

let test_fact_idempotence () =
  let _, env = make_env () in
  let fired = ref 0 in
  Env.on_change env (fun _ _ _ -> incr fired);
  Env.assert_fact env "p" [ Value.Int 1 ];
  Env.assert_fact env "p" [ Value.Int 1 ];
  Alcotest.(check int) "one change event" 1 !fired;
  Env.retract_fact env "p" [ Value.Int 1 ];
  Env.retract_fact env "p" [ Value.Int 1 ];
  Alcotest.(check int) "one retract event" 2 !fired

let test_unknown_predicate_raises () =
  let _, env = make_env () in
  Alcotest.(check bool) "raises" true
    (match Env.check env "nonsense" [] with
    | _ -> false
    | exception Env.Unknown_predicate "nonsense" -> true)

let test_declare_allows_empty () =
  let _, env = make_env () in
  Env.declare_fact env "excluded";
  Alcotest.(check bool) "empty predicate false" false (Env.check env "excluded" [ Value.Int 1 ]);
  Alcotest.(check bool) "negation true" true (Env.check env "!excluded" [ Value.Int 1 ]);
  Alcotest.(check (list (list value))) "enumerates empty" [] (Env.enumerate env "excluded")

let test_negation () =
  let _, env = make_env () in
  Env.assert_fact env "excluded" [ Value.Int 7 ];
  Alcotest.(check bool) "negated hit" false (Env.check env "!excluded" [ Value.Int 7 ]);
  Alcotest.(check bool) "negated miss" true (Env.check env "!excluded" [ Value.Int 8 ])

let test_builtin_comparisons () =
  let _, env = make_env () in
  Alcotest.(check bool) "eq" true (Env.check env "eq" [ Value.Int 2; Value.Int 2 ]);
  Alcotest.(check bool) "eq mixed" true (Env.check env "eq" [ Value.Int 2; Value.Time 2.0 ]);
  Alcotest.(check bool) "ne" true (Env.check env "ne" [ Value.Int 2; Value.Int 3 ]);
  Alcotest.(check bool) "lt" true (Env.check env "lt" [ Value.Int 2; Value.Int 3 ]);
  Alcotest.(check bool) "le eq" true (Env.check env "le" [ Value.Int 3; Value.Int 3 ]);
  Alcotest.(check bool) "gt" false (Env.check env "gt" [ Value.Int 2; Value.Int 3 ]);
  Alcotest.(check bool) "ge" true (Env.check env "ge" [ Value.Int 3; Value.Int 3 ]);
  Alcotest.(check bool) "string compare" true
    (Env.check env "lt" [ Value.Str "a"; Value.Str "b" ]);
  Alcotest.(check bool) "wrong arity" false (Env.check env "eq" [ Value.Int 1 ])

let test_builtin_time () =
  let clock, env = make_env ~start:100.0 () in
  Alcotest.(check bool) "before future" true (Env.check env "before" [ Value.Time 200.0 ]);
  Alcotest.(check bool) "before past" false (Env.check env "before" [ Value.Time 50.0 ]);
  Alcotest.(check bool) "after past" true (Env.check env "after" [ Value.Time 50.0 ]);
  Alcotest.(check bool) "after future" false (Env.check env "after" [ Value.Time 200.0 ]);
  Clock.advance_to clock 250.0;
  Alcotest.(check bool) "before flips" false (Env.check env "before" [ Value.Time 200.0 ])

let test_hour_between () =
  (* Start at 10:00 (36000 s). *)
  let _, env = make_env ~start:36000.0 () in
  Alcotest.(check bool) "in window" true (Env.check env "hour_between" [ Value.Int 9; Value.Int 17 ]);
  Alcotest.(check bool) "out of window" false
    (Env.check env "hour_between" [ Value.Int 11; Value.Int 17 ]);
  (* Wrapping window 22–6 does not contain 10:00, does contain 23:00. *)
  Alcotest.(check bool) "wrap out" false (Env.check env "hour_between" [ Value.Int 22; Value.Int 6 ]);
  let _, env_night = make_env ~start:(23.0 *. 3600.0) () in
  Alcotest.(check bool) "wrap in" true
    (Env.check env_night "hour_between" [ Value.Int 22; Value.Int 6 ])

let test_next_change_time () =
  let _, env = make_env ~start:100.0 () in
  Alcotest.(check (option (float 1e-9))) "before" (Some 200.0)
    (Env.next_change_time env "before" [ Value.Time 200.0 ]);
  Alcotest.(check (option (float 1e-9))) "already past" None
    (Env.next_change_time env "before" [ Value.Time 50.0 ]);
  Alcotest.(check (option (float 1e-9))) "facts have none" None
    (Env.next_change_time env "whatever" [ Value.Int 1 ]);
  match Env.next_change_time env "hour_between" [ Value.Int 9; Value.Int 17 ] with
  | Some t -> Alcotest.(check bool) "future boundary" true (t > 100.0)
  | None -> Alcotest.fail "expected a boundary"

let test_register_computed () =
  let _, env = make_env () in
  Env.register env "even" (function [ Value.Int n ] -> n mod 2 = 0 | _ -> false);
  Alcotest.(check bool) "even 4" true (Env.check env "even" [ Value.Int 4 ]);
  Alcotest.(check bool) "even 3" false (Env.check env "even" [ Value.Int 3 ]);
  Alcotest.(check (list (list value))) "computed enumerate empty" [] (Env.enumerate env "even")

let test_register_conflicts () =
  let _, env = make_env () in
  Env.assert_fact env "p" [ Value.Int 1 ];
  Alcotest.(check bool) "register over fact raises" true
    (match Env.register env "p" (fun _ -> true) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "assert over computed raises" true
    (match Env.assert_fact env "eq" [] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_enumerate () =
  let _, env = make_env () in
  Env.assert_fact env "p" [ Value.Int 2 ];
  Env.assert_fact env "p" [ Value.Int 1 ];
  Alcotest.(check int) "two tuples" 2 (List.length (Env.enumerate env "p"));
  Alcotest.(check int) "fact_count" 2 (Env.fact_count env)

(* ---------------- Rules ---------------- *)

let cref name args : Rule.cred_ref = { service = None; name; args }

let test_initial_rejects_prereq () =
  Alcotest.(check bool) "raises" true
    (match
       Rule.activation ~initial:true ~role:"r" ~params:[]
         [ (false, Rule.Prereq (cref "other" [])) ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_non_initial_needs_conditions () =
  Alcotest.(check bool) "raises" true
    (match Rule.activation ~role:"r" ~params:[] [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_membership_conditions () =
  let rule =
    Rule.activation ~role:"r"
      ~params:[ Term.Var "x" ]
      [
        (true, Rule.Prereq (cref "a" [ Term.Var "x" ]));
        (false, Rule.Constraint ("eq", [ Term.Var "x"; Term.Var "x" ]));
        (true, Rule.Appointment (cref "k" []));
      ]
  in
  let monitored = Rule.membership_conditions rule in
  Alcotest.(check (list int)) "indices" [ 0; 2 ] (List.map fst monitored);
  Alcotest.(check (list string)) "head vars" [ "x" ] (Rule.head_vars rule)

let test_pp_smoke () =
  let rule =
    Rule.activation ~initial:true ~role:"logged_in"
      ~params:[ Term.Var "u" ]
      [ (true, Rule.Appointment { service = Some "admin"; name = "employee"; args = [ Term.Var "u" ] }) ]
  in
  let s = Format.asprintf "%a" Rule.pp_activation rule in
  Alcotest.(check bool) "mentions role" true (String.length s > 0)

let suite =
  ( "policy",
    [
      Alcotest.test_case "unify var" `Quick test_unify_var_binds;
      Alcotest.test_case "unify const" `Quick test_unify_const;
      Alcotest.test_case "unify repeated var" `Quick test_unify_repeated_var;
      Alcotest.test_case "unify args" `Quick test_unify_args;
      Alcotest.test_case "apply/ground" `Quick test_apply_ground;
      Alcotest.test_case "vars order" `Quick test_vars_order_dedup;
      Alcotest.test_case "facts" `Quick test_facts;
      Alcotest.test_case "fact idempotence" `Quick test_fact_idempotence;
      Alcotest.test_case "unknown predicate" `Quick test_unknown_predicate_raises;
      Alcotest.test_case "declare empty" `Quick test_declare_allows_empty;
      Alcotest.test_case "negation" `Quick test_negation;
      Alcotest.test_case "comparisons" `Quick test_builtin_comparisons;
      Alcotest.test_case "time predicates" `Quick test_builtin_time;
      Alcotest.test_case "hour_between" `Quick test_hour_between;
      Alcotest.test_case "next_change_time" `Quick test_next_change_time;
      Alcotest.test_case "register computed" `Quick test_register_computed;
      Alcotest.test_case "register conflicts" `Quick test_register_conflicts;
      Alcotest.test_case "enumerate" `Quick test_enumerate;
      Alcotest.test_case "initial rejects prereq" `Quick test_initial_rejects_prereq;
      Alcotest.test_case "non-initial needs conditions" `Quick test_non_initial_needs_conditions;
      Alcotest.test_case "membership conditions" `Quick test_membership_conditions;
      Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    ] )
