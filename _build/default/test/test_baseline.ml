(* The comparison baselines: RBAC96, RBDM0 delegation, plain ACLs. *)

module Rbac96 = Oasis_baseline.Rbac96
module Delegation = Oasis_baseline.Delegation
module Acl = Oasis_baseline.Acl
module Ident = Oasis_util.Ident

let user n = Ident.make "user" n

let perm op target = { Rbac96.operation = op; target }

(* ---------------- RBAC96 ---------------- *)

let hospital_rbac () =
  let r = Rbac96.create () in
  Rbac96.add_role r "employee";
  Rbac96.add_role r "doctor";
  Rbac96.add_role r "consultant";
  Rbac96.add_inheritance r ~senior:"doctor" ~junior:"employee";
  Rbac96.add_inheritance r ~senior:"consultant" ~junior:"doctor";
  Rbac96.grant_permission r "employee" (perm "enter" "building");
  Rbac96.grant_permission r "doctor" (perm "read" "records");
  Rbac96.grant_permission r "consultant" (perm "sign" "discharge");
  r

let test_hierarchy_inheritance () =
  let r = hospital_rbac () in
  Rbac96.add_user r (user 1);
  Rbac96.assign_user r (user 1) "consultant";
  Alcotest.(check (list string)) "authorized closure" [ "consultant"; "doctor"; "employee" ]
    (List.sort compare (Rbac96.authorized_roles r (user 1)));
  let s = Rbac96.create_session r (user 1) in
  (match Rbac96.activate_role r s "doctor" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "junior perm via hierarchy" true
    (Rbac96.check r s (perm "enter" "building"));
  Alcotest.(check bool) "senior perm not via junior activation" false
    (Rbac96.check r s (perm "sign" "discharge"))

let test_activation_requires_authorization () =
  let r = hospital_rbac () in
  Rbac96.add_user r (user 2);
  Rbac96.assign_user r (user 2) "employee";
  let s = Rbac96.create_session r (user 2) in
  (match Rbac96.activate_role r s "doctor" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "employee became doctor");
  match Rbac96.activate_role r s "employee" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_deassign_reaches_sessions () =
  let r = hospital_rbac () in
  Rbac96.add_user r (user 3);
  Rbac96.assign_user r (user 3) "doctor";
  let s = Rbac96.create_session r (user 3) in
  (match Rbac96.activate_role r s "doctor" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "has perm" true (Rbac96.check r s (perm "read" "records"));
  Rbac96.deassign_user r (user 3) "doctor";
  Alcotest.(check bool) "perm gone from live session" false
    (Rbac96.check r s (perm "read" "records"))

let test_cycle_detection () =
  let r = hospital_rbac () in
  Alcotest.(check bool) "cycle raises" true
    (match Rbac96.add_inheritance r ~senior:"employee" ~junior:"consultant" with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_ssd () =
  let r = Rbac96.create () in
  Rbac96.add_role r "payer";
  Rbac96.add_role r "approver";
  Rbac96.add_ssd r "payer" "approver";
  Rbac96.add_user r (user 4);
  Rbac96.assign_user r (user 4) "payer";
  Alcotest.(check bool) "ssd blocks second role" true
    (match Rbac96.assign_user r (user 4) "approver" with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* Installing SSD over an existing violation is refused. *)
  let r2 = Rbac96.create () in
  Rbac96.add_role r2 "a";
  Rbac96.add_role r2 "b";
  Rbac96.add_user r2 (user 5);
  Rbac96.assign_user r2 (user 5) "a";
  Rbac96.assign_user r2 (user 5) "b";
  Alcotest.(check bool) "existing violation refused" true
    (match Rbac96.add_ssd r2 "a" "b" with () -> false | exception Invalid_argument _ -> true)

let test_admin_op_counting () =
  let r = Rbac96.create () in
  let before = Rbac96.admin_ops r in
  Rbac96.add_role r "x";
  Rbac96.add_role r "x";
  (* idempotent: only one op *)
  Rbac96.add_user r (user 6);
  Rbac96.assign_user r (user 6) "x";
  Rbac96.assign_user r (user 6) "x";
  Alcotest.(check int) "idempotent ops uncounted" 3 (Rbac96.admin_ops r - before)

let test_users_of_role () =
  let r = hospital_rbac () in
  Rbac96.add_user r (user 7);
  Rbac96.add_user r (user 8);
  Rbac96.assign_user r (user 7) "doctor";
  Rbac96.assign_user r (user 8) "doctor";
  Alcotest.(check int) "two doctors" 2 (List.length (Rbac96.users_of_role r "doctor"));
  Alcotest.(check int) "counts" 2 (Rbac96.user_count r);
  Alcotest.(check int) "roles" 3 (Rbac96.role_count r)

(* ---------------- Delegation (RBDM0) ---------------- *)

let delegation_world () =
  let r = hospital_rbac () in
  Rbac96.add_user r (user 1);
  Rbac96.assign_user r (user 1) "doctor";
  List.iter (fun i -> Rbac96.add_user r (user i)) [ 2; 3; 4; 5 ];
  (r, Delegation.create r ~max_depth:3)

let test_delegation_chain () =
  let _, d = delegation_world () in
  (match Delegation.delegate d ~from_user:(user 1) ~to_user:(user 2) ~role:"doctor" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Delegation.delegate d ~from_user:(user 2) ~to_user:(user 3) ~role:"doctor" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "delegatee is member" true (Delegation.is_member d (user 3) "doctor");
  Alcotest.(check int) "depth" 2 (Delegation.chain_depth d (user 3) "doctor");
  Alcotest.(check int) "original depth" 0 (Delegation.chain_depth d (user 1) "doctor")

let test_delegation_requires_membership () =
  let _, d = delegation_world () in
  match Delegation.delegate d ~from_user:(user 4) ~to_user:(user 5) ~role:"doctor" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-member delegated"

let test_delegation_depth_limit () =
  let _, d = delegation_world () in
  ignore (Delegation.delegate d ~from_user:(user 1) ~to_user:(user 2) ~role:"doctor");
  ignore (Delegation.delegate d ~from_user:(user 2) ~to_user:(user 3) ~role:"doctor");
  ignore (Delegation.delegate d ~from_user:(user 3) ~to_user:(user 4) ~role:"doctor");
  match Delegation.delegate d ~from_user:(user 4) ~to_user:(user 5) ~role:"doctor" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "depth limit ignored"

let test_delegation_no_double_grant () =
  let _, d = delegation_world () in
  ignore (Delegation.delegate d ~from_user:(user 1) ~to_user:(user 2) ~role:"doctor");
  match Delegation.delegate d ~from_user:(user 1) ~to_user:(user 2) ~role:"doctor" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double delegation"

let test_cascading_revocation () =
  let _, d = delegation_world () in
  ignore (Delegation.delegate d ~from_user:(user 1) ~to_user:(user 2) ~role:"doctor");
  ignore (Delegation.delegate d ~from_user:(user 2) ~to_user:(user 3) ~role:"doctor");
  ignore (Delegation.delegate d ~from_user:(user 3) ~to_user:(user 4) ~role:"doctor");
  let torn = Delegation.revoke d ~from_user:(user 1) ~to_user:(user 2) ~role:"doctor" in
  Alcotest.(check int) "blast radius = whole chain" 3 torn;
  Alcotest.(check bool) "tail lost role" false (Delegation.is_member d (user 4) "doctor");
  Alcotest.(check int) "no delegations left" 0 (Delegation.delegation_count d)

let test_revoke_all_from () =
  let _, d = delegation_world () in
  ignore (Delegation.delegate d ~from_user:(user 1) ~to_user:(user 2) ~role:"doctor");
  ignore (Delegation.delegate d ~from_user:(user 1) ~to_user:(user 3) ~role:"doctor");
  ignore (Delegation.delegate d ~from_user:(user 3) ~to_user:(user 4) ~role:"doctor");
  Alcotest.(check int) "three torn down" 3 (Delegation.revoke_all_from d (user 1) "doctor")

(* ---------------- ACL ---------------- *)

let test_acl_basic () =
  let a = Acl.create () in
  Acl.add_object a "record-1";
  Acl.grant a ~principal:(user 1) ~obj:"record-1" ~operation:"read";
  Alcotest.(check bool) "granted" true (Acl.check a ~principal:(user 1) ~obj:"record-1" ~operation:"read");
  Alcotest.(check bool) "other op" false
    (Acl.check a ~principal:(user 1) ~obj:"record-1" ~operation:"write");
  Acl.revoke a ~principal:(user 1) ~obj:"record-1" ~operation:"read";
  Alcotest.(check bool) "revoked" false
    (Acl.check a ~principal:(user 1) ~obj:"record-1" ~operation:"read")

let test_acl_offboard_blast_radius () =
  let a = Acl.create () in
  for i = 1 to 50 do
    let obj = Printf.sprintf "record-%d" i in
    Acl.add_object a obj;
    Acl.grant a ~principal:(user 1) ~obj ~operation:"read";
    Acl.grant a ~principal:(user 2) ~obj ~operation:"read"
  done;
  Alcotest.(check int) "entries" 100 (Acl.entry_count a);
  let touched = Acl.offboard a (user 1) in
  Alcotest.(check int) "offboarding touches every object" 50 touched;
  Alcotest.(check int) "entries after" 50 (Acl.entry_count a);
  Alcotest.(check bool) "other user intact" true
    (Acl.check a ~principal:(user 2) ~obj:"record-9" ~operation:"read")

let test_acl_unknown_object () =
  let a = Acl.create () in
  Alcotest.(check bool) "grant raises" true
    (match Acl.grant a ~principal:(user 1) ~obj:"ghost" ~operation:"read" with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "check false" false
    (Acl.check a ~principal:(user 1) ~obj:"ghost" ~operation:"read")

let suite =
  ( "baseline",
    [
      Alcotest.test_case "rbac hierarchy" `Quick test_hierarchy_inheritance;
      Alcotest.test_case "rbac activation" `Quick test_activation_requires_authorization;
      Alcotest.test_case "rbac deassign" `Quick test_deassign_reaches_sessions;
      Alcotest.test_case "rbac cycle" `Quick test_cycle_detection;
      Alcotest.test_case "rbac ssd" `Quick test_ssd;
      Alcotest.test_case "rbac op counting" `Quick test_admin_op_counting;
      Alcotest.test_case "rbac users_of_role" `Quick test_users_of_role;
      Alcotest.test_case "delegation chain" `Quick test_delegation_chain;
      Alcotest.test_case "delegation membership" `Quick test_delegation_requires_membership;
      Alcotest.test_case "delegation depth" `Quick test_delegation_depth_limit;
      Alcotest.test_case "delegation no double" `Quick test_delegation_no_double_grant;
      Alcotest.test_case "cascading revocation" `Quick test_cascading_revocation;
      Alcotest.test_case "revoke_all_from" `Quick test_revoke_all_from;
      Alcotest.test_case "acl basic" `Quick test_acl_basic;
      Alcotest.test_case "acl offboard" `Quick test_acl_offboard_blast_radius;
      Alcotest.test_case "acl unknown object" `Quick test_acl_unknown_object;
    ] )
