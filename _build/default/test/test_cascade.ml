(* Role-dependency chains and trees across services (Fig. 1 + Fig. 5):
   sessions built through many services collapse completely and exactly. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Value = Oasis_util.Value
open Fixtures

(* A chain: s0 defines an initial role; each s(i) requires s(i-1)'s role as
   a monitored prerequisite (Fig. 1's dependency structure). *)
let build_simple_chain world depth =
  let root = Service.create world ~name:"s0" ~policy:"initial r0 <- env:eq(1, 1);" () in
  let services = Array.make (depth + 1) root in
  for i = 1 to depth do
    let policy = Printf.sprintf "r%d <- *r%d@s%d;" i (i - 1) (i - 1) in
    services.(i) <- Service.create world ~name:(Printf.sprintf "s%d" i) ~policy ()
  done;
  services

let activate_chain world services p =
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      Array.iteri
        (fun i service ->
          match Principal.activate p s service ~role:(Printf.sprintf "r%d" i) () with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "activation r%d denied: %s" i (Protocol.denial_to_string d))
        services;
      s)

let total_active services =
  Array.fold_left (fun acc s -> acc + List.length (Service.active_roles s)) 0 services

let test_chain_collapse () =
  let world = World.create ~seed:41 () in
  let services = build_simple_chain world 8 in
  let p = Principal.create world ~name:"p" in
  let session = activate_chain world services p in
  ignore session;
  Alcotest.(check int) "nine roles active" 9 (total_active services);
  (* Deactivating the root initial role collapses the entire session. *)
  let root_rmc = List.nth (Principal.session_rmcs session) 8 in
  Alcotest.(check string) "found root" "r0" root_rmc.Oasis_cert.Rmc.role;
  ignore (Service.revoke_certificate services.(0) root_rmc.Oasis_cert.Rmc.id ~reason:"logout");
  World.settle world;
  Alcotest.(check int) "all collapsed" 0 (total_active services)

let test_chain_partial_collapse () =
  let world = World.create ~seed:42 () in
  let services = build_simple_chain world 8 in
  let p = Principal.create world ~name:"p" in
  let session = activate_chain world services p in
  (* Kill the middle: everything below survives, everything above dies. *)
  let r4 =
    List.find (fun (r : Oasis_cert.Rmc.t) -> r.role = "r4") (Principal.session_rmcs session)
  in
  ignore (Service.revoke_certificate services.(4) r4.Oasis_cert.Rmc.id ~reason:"mid cut");
  World.settle world;
  for i = 0 to 3 do
    Alcotest.(check int) (Printf.sprintf "s%d survives" i) 1
      (List.length (Service.active_roles services.(i)))
  done;
  for i = 4 to 8 do
    Alcotest.(check int) (Printf.sprintf "s%d collapsed" i) 0
      (List.length (Service.active_roles services.(i)))
  done

let test_collapse_propagation_time () =
  (* Collapse reaches depth d after roughly d notification latencies — the
     E5 shape. *)
  let world = World.create ~seed:43 ~notify_latency:0.01 () in
  let services = build_simple_chain world 8 in
  let p = Principal.create world ~name:"p" in
  let session = activate_chain world services p in
  ignore session;
  let t0 = World.now world in
  let root_rmc =
    List.find (fun (r : Oasis_cert.Rmc.t) -> r.role = "r0") (Principal.session_rmcs session)
  in
  ignore (Service.revoke_certificate services.(0) root_rmc.Oasis_cert.Rmc.id ~reason:"x");
  World.settle world;
  ignore t0;
  (* Each hop adds one broker notification; verify monotone cascade counts. *)
  let st = Array.map (fun s -> (Service.stats s).Service.cascade_deactivations) services in
  Array.iteri
    (fun i n ->
      if i > 0 then Alcotest.(check int) (Printf.sprintf "s%d cascaded" i) 1 n)
    st

let test_tree_collapse () =
  (* One root service; [fanout] dependent services each with [fanout]
     dependent roles for distinct principals. *)
  let world = World.create ~seed:44 () in
  let fanout = 3 in
  let root = Service.create world ~name:"root" ~policy:"initial base <- env:eq(1, 1);" () in
  let leaves =
    List.init fanout (fun i ->
        Service.create world
          ~name:(Printf.sprintf "leaf%d" i)
          ~policy:"dependent <- *base@root;" ())
  in
  let principals = List.init fanout (fun i -> Principal.create world ~name:(Printf.sprintf "p%d" i)) in
  let base_rmcs =
    List.map
      (fun p ->
        World.run_proc world (fun () ->
            let s = Principal.start_session p in
            let rmc = ok (Principal.activate p s root ~role:"base" ()) in
            List.iter
              (fun leaf -> ignore (ok (Principal.activate p s leaf ~role:"dependent" ())))
              leaves;
            rmc))
      principals
  in
  let leaf_active () =
    List.fold_left (fun acc leaf -> acc + List.length (Service.active_roles leaf)) 0 leaves
  in
  Alcotest.(check int) "3x3 leaves" (fanout * fanout) (leaf_active ());
  (* Revoke one principal's base: only their leaves die. *)
  ignore
    (Service.revoke_certificate root (List.hd base_rmcs).Oasis_cert.Rmc.id ~reason:"one out");
  World.settle world;
  Alcotest.(check int) "one principal's leaves gone" (fanout * (fanout - 1)) (leaf_active ());
  Alcotest.(check int) "root keeps others" (fanout - 1) (List.length (Service.active_roles root))

let test_broker_traffic_proportional_to_tree () =
  let world = World.create ~seed:45 () in
  let services = build_simple_chain world 4 in
  let p = Principal.create world ~name:"p" in
  let session = activate_chain world services p in
  let broker = World.broker world in
  Oasis_event.Broker.reset_stats broker;
  let root_rmc =
    List.find (fun (r : Oasis_cert.Rmc.t) -> r.role = "r0") (Principal.session_rmcs session)
  in
  ignore (Service.revoke_certificate services.(0) root_rmc.Oasis_cert.Rmc.id ~reason:"x");
  World.settle world;
  let stats = Oasis_event.Broker.stats broker in
  (* One invalidation publish per collapsed certificate. *)
  Alcotest.(check int) "one publish per dead role" 5 stats.Oasis_event.Broker.published

let suite =
  ( "cascade",
    [
      Alcotest.test_case "chain collapse" `Quick test_chain_collapse;
      Alcotest.test_case "partial collapse" `Quick test_chain_partial_collapse;
      Alcotest.test_case "propagation accounting" `Quick test_collapse_propagation_time;
      Alcotest.test_case "tree collapse" `Quick test_tree_collapse;
      Alcotest.test_case "broker traffic" `Quick test_broker_traffic_proportional_to_tree;
    ] )
