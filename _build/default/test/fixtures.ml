(* A shared test world: the paper's hospital scenario in miniature.

   Roles:
     bootstrap            — initial, condition-free (installer trapdoor)
     hr_admin(a)          — initial, via is_admin appointment
     logged_in(u)         — initial, via employee appointment
     doctor(u)            — logged_in + qualified appointment (both monitored)
     treating_doctor(d,p) — doctor + assigned(d,p) fact (monitored) + not excluded
   Privileges:
     read_record(d,p)     — treating_doctor(d,p), not excluded
   Appointments issued by the hospital:
     is_admin(a)   — requires bootstrap
     employee(u)   — requires hr_admin
     qualified(u)  — requires hr_admin *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Env = Oasis_policy.Env
module Value = Oasis_util.Value

(* Appointment issuance is itself policy (the 'appoint' statements). *)
let hospital_policy =
  {|
    initial bootstrap <- env:eq(1, 1);
    initial hr_admin(a) <- appt:is_admin(a);
    initial logged_in(u) <- appt:employee(u);
    doctor(u) <- *logged_in(u), *appt:qualified(u);
    treating_doctor(doc, pat) <-
        *doctor(doc), *env:assigned(doc, pat), env:!excluded(doc, pat);
    priv read_record(doc, pat) <- treating_doctor(doc, pat), env:!excluded(doc, pat);
    appoint is_admin(u) <- bootstrap;
    appoint employee(u) <- hr_admin(a);
    appoint qualified(u) <- hr_admin(a);
  |}

type t = {
  world : World.t;
  hospital : Service.t;
  admin : Principal.t;
  admin_session : Principal.session;
  alice : Principal.t;
  alice_qualification : Oasis_cert.Appointment.t;
}

let ok = function
  | Ok v -> v
  | Error denial -> Alcotest.failf "unexpected denial: %s" (Protocol.denial_to_string denial)

(* Builds the world and walks the administrative bootstrap so that [alice]
   holds employee + qualified appointments and [admin] is an hr_admin. *)
let make ?(seed = 7) ?config ?monitoring () =
  let world = World.create ~seed ?monitoring () in
  let hospital = Service.create world ~name:"hospital" ?config ~policy:hospital_policy () in
  Env.declare_fact (Service.env hospital) "assigned";
  Env.declare_fact (Service.env hospital) "excluded";
  let admin = Principal.create world ~name:"admin" in
  let alice = Principal.create world ~name:"alice" in
  let admin_session, qualification =
    World.run_proc world (fun () ->
        let boot = Principal.start_session admin in
        ignore (ok (Principal.activate admin boot hospital ~role:"bootstrap" ()));
        ignore
          (ok
             (Principal.appoint admin boot hospital ~kind:"is_admin"
                ~args:[ Value.Id (Principal.id admin) ]
                ~holder:admin ()));
        let session = Principal.start_session admin in
        ignore (ok (Principal.activate admin session hospital ~role:"hr_admin" ()));
        ignore
          (ok
             (Principal.appoint admin session hospital ~kind:"employee"
                ~args:[ Value.Id (Principal.id alice) ]
                ~holder:alice ()));
        let qualification =
          ok
            (Principal.appoint admin session hospital ~kind:"qualified"
               ~args:[ Value.Id (Principal.id alice) ]
               ~holder:alice ())
        in
        (session, qualification))
  in
  { world; hospital; admin; admin_session; alice; alice_qualification = qualification }

(* Walks alice to an active treating_doctor(alice, patient) role in a fresh
   session; returns the session. *)
let alice_treating t ~patient =
  Env.assert_fact (Service.env t.hospital) "assigned"
    [ Value.Id (Principal.id t.alice); Value.Int patient ];
  World.run_proc t.world (fun () ->
      let session = Principal.start_session t.alice in
      ignore (ok (Principal.activate t.alice session t.hospital ~role:"logged_in" ()));
      ignore (ok (Principal.activate t.alice session t.hospital ~role:"doctor" ()));
      ignore (ok (Principal.activate t.alice session t.hospital ~role:"treating_doctor" ()));
      session)

let denial_testable =
  Alcotest.testable
    (fun ppf d -> Protocol.pp_denial ppf d)
    (fun a b -> Protocol.denial_to_string a = Protocol.denial_to_string b)
