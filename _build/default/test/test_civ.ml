(* The replicated certificate issuing & validation service (ref [10]). *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Value = Oasis_util.Value
module Network = Oasis_sim.Network

let make_civ ?(replicas = 3) ?monitoring ?notify_latency ?replication () =
  let world = World.create ~seed:21 ?monitoring ?notify_latency () in
  let civ = Civ.create world ~name:"civ" ~replicas ?replication () in
  (world, civ)

let issue_for _world civ principal =
  let appt =
    Civ.issue civ ~kind:"member"
      ~args:[ Value.Id (Principal.id principal) ]
      ~holder:(Principal.id principal) ~holder_key:(Principal.longterm_public principal) ()
  in
  Principal.grant_appointment principal appt;
  appt

let validate_via_router world civ appt =
  (* As a relying service would: rpc to the router. *)
  let probe = Principal.create world ~name:"probe" in
  World.run_proc world (fun () ->
      match
        Network.rpc (World.network world) ~src:(Principal.id probe) ~dst:(Civ.id civ)
          (Protocol.Validate_appt { appt })
      with
      | Protocol.Validate_result ok -> ok
      | _ -> false)

let test_issue_and_validate () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  Alcotest.(check bool) "primary view valid" true (Civ.is_valid civ appt.Oasis_cert.Appointment.id);
  Alcotest.(check bool) "validates via router" true (validate_via_router world civ appt)

let test_replication_lag () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  let id = appt.Oasis_cert.Appointment.id in
  (* Immediately after issue, replicas have not yet heard. *)
  Alcotest.(check bool) "replica 1 stale" false (Civ.replica_view civ 1 id);
  World.settle world;
  Alcotest.(check bool) "replica 1 caught up" true (Civ.replica_view civ 1 id);
  Alcotest.(check bool) "replica 2 caught up" true (Civ.replica_view civ 2 id)

let test_unreplicated_cert_forwarded_to_primary () =
  (* Validation arriving before replication: replica forwards to primary
     rather than denying a fresh certificate. *)
  (* Slow replication channel: validation requests overtake replication. *)
  let world, civ = make_civ ~notify_latency:0.5 () in
  let p = Principal.create world ~name:"p" in
  let probe = Principal.create world ~name:"probe2" in
  let result =
    World.run_proc world (fun () ->
        let appt =
          Civ.issue civ ~kind:"member" ~args:[] ~holder:(Principal.id p)
            ~holder_key:(Principal.longterm_public p) ()
        in
        (* Ask immediately — replication events still in flight. Drive the
           router until we hit a non-primary replica. *)
        let oks = ref true in
        for _ = 1 to 3 do
          match
            Network.rpc (World.network world) ~src:(Principal.id probe) ~dst:(Civ.id civ)
              (Protocol.Validate_appt { appt })
          with
          | Protocol.Validate_result ok -> oks := !oks && ok
          | _ -> oks := false
        done;
        !oks)
  in
  Alcotest.(check bool) "all validations true" true result;
  Alcotest.(check bool) "some were forwarded" true ((Civ.stats civ).Civ.forwarded_to_primary >= 1)

let test_revocation_propagates () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  World.settle world;
  Alcotest.(check bool) "revoke succeeds" true
    (Civ.revoke civ appt.Oasis_cert.Appointment.id ~reason:"expelled");
  Alcotest.(check bool) "second revoke is false" false
    (Civ.revoke civ appt.Oasis_cert.Appointment.id ~reason:"again");
  World.settle world;
  Alcotest.(check bool) "replicas see revocation" false
    (Civ.replica_view civ 1 appt.Oasis_cert.Appointment.id);
  Alcotest.(check bool) "router validation false" false (validate_via_router world civ appt)

let test_failover () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  World.settle world;
  (* Kill replica 1; the router must fail over transparently. *)
  Civ.set_replica_down civ 1 true;
  for _ = 1 to 6 do
    Alcotest.(check bool) "validates despite dead replica" true
      (validate_via_router world civ appt)
  done;
  Alcotest.(check bool) "failovers recorded" true ((Civ.stats civ).Civ.failovers >= 1)

let test_reads_survive_primary_down () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  World.settle world;
  Civ.set_replica_down civ 0 true;
  Alcotest.(check bool) "replicas still validate" true (validate_via_router world civ appt);
  (* Writes are unavailable. *)
  Alcotest.(check bool) "issue raises" true
    (match
       Civ.issue civ ~kind:"member" ~args:[] ~holder:(Principal.id p)
         ~holder_key:(Principal.longterm_public p) ()
     with
    | _ -> false
    | exception Civ.Primary_unavailable -> true);
  Alcotest.(check bool) "revoke unavailable" false
    (Civ.revoke civ appt.Oasis_cert.Appointment.id ~reason:"x")

let test_all_replicas_down () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  World.settle world;
  for i = 0 to Civ.replica_count civ - 1 do
    Civ.set_replica_down civ i true
  done;
  Alcotest.(check bool) "exhausted returns false" false (validate_via_router world civ appt);
  Alcotest.(check bool) "exhaustion recorded" true ((Civ.stats civ).Civ.exhausted >= 1)

let test_round_robin_spreads_load () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  World.settle world;
  for _ = 1 to 9 do
    ignore (validate_via_router world civ appt)
  done;
  let served = (Civ.stats civ).Civ.validations_served in
  Array.iteri
    (fun i n -> Alcotest.(check bool) (Printf.sprintf "replica %d served ~3 (%d)" i n) true (n >= 2))
    served

let test_epoch_rotation () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  World.settle world;
  Civ.rotate_secret civ;
  Alcotest.(check int) "epoch" 1 (Civ.current_epoch civ);
  Alcotest.(check bool) "stale epoch rejected" false (validate_via_router world civ appt)

let test_civ_backs_service_policy () =
  (* A service whose role is gated on a CIV-issued appointment. *)
  let world, civ = make_civ () in
  let clinic =
    Service.create world ~name:"clinic" ~policy:"initial patient(u) <- appt:member(u)@civ;" ()
  in
  let p = Principal.create world ~name:"p" in
  ignore (issue_for world civ p);
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match Principal.activate p s clinic ~role:"patient" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d));
  (* Revoke at CIV: patient role collapses? Only if membership-marked — it
     is not here; but fresh activation fails. *)
  let appt = List.hd (Principal.appointments p) in
  ignore (Civ.revoke civ appt.Oasis_cert.Appointment.id ~reason:"lapsed");
  World.settle world;
  World.run_proc world (fun () ->
      let s2 = Principal.start_session p in
      match Principal.activate p s2 clinic ~role:"patient" () with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "revoked membership accepted")

let test_sync_replication_no_staleness () =
  (* ref [10]'s consistency management, Sync flavour: replicas are
     consistent the moment the write returns — no lag, no primary fallback,
     even over a slow replication channel. *)
  let world, civ = make_civ ~replication:Civ.Sync ~notify_latency:0.5 () in
  let p = Principal.create world ~name:"p" in
  let appt = issue_for world civ p in
  let id = appt.Oasis_cert.Appointment.id in
  Alcotest.(check bool) "replica 1 immediately consistent" true (Civ.replica_view civ 1 id);
  Alcotest.(check bool) "replica 2 immediately consistent" true (Civ.replica_view civ 2 id);
  for _ = 1 to 3 do
    Alcotest.(check bool) "validates" true (validate_via_router world civ appt)
  done;
  Alcotest.(check int) "no primary fallbacks" 0 (Civ.stats civ).Civ.forwarded_to_primary;
  Alcotest.(check bool) "revocation also synchronous" true
    (Civ.revoke civ id ~reason:"x" && not (Civ.replica_view civ 1 id))

let test_reissue_after_rotation () =
  (* Sect. 4.1: rotation invalidates old appointment certificates; re-issue
     under the new epoch secret restores service. *)
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let old = issue_for world civ p in
  World.settle world;
  Civ.rotate_secret civ;
  Alcotest.(check bool) "old rejected after rotation" false (validate_via_router world civ old);
  let fresh =
    match Civ.reissue civ old with Ok a -> a | Error e -> Alcotest.failf "reissue: %s" e
  in
  World.settle world;
  Alcotest.(check bool) "fresh validates" true (validate_via_router world civ fresh);
  Alcotest.(check bool) "same content" true
    (String.equal fresh.Oasis_cert.Appointment.kind old.Oasis_cert.Appointment.kind
    && String.equal fresh.Oasis_cert.Appointment.holder old.Oasis_cert.Appointment.holder);
  Alcotest.(check bool) "old record superseded" false
    (Civ.is_valid civ old.Oasis_cert.Appointment.id);
  (* Re-issuing a revoked or forged certificate is refused. *)
  (match Civ.reissue civ old with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "superseded certificate re-issued again");
  let forged = Oasis_cert.Appointment.with_args fresh [ Oasis_util.Value.Int 666 ] in
  match Civ.reissue civ forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged certificate re-issued"

let test_expiring_civ_certificate () =
  let world, civ = make_civ () in
  let p = Principal.create world ~name:"p" in
  let appt =
    Civ.issue civ ~kind:"member" ~args:[] ~holder:(Principal.id p)
      ~holder_key:(Principal.longterm_public p) ~expires_at:100.0 ()
  in
  World.run_until world 50.0;
  Alcotest.(check bool) "valid before expiry" true (Civ.is_valid civ appt.Oasis_cert.Appointment.id);
  World.run_until world 101.0;
  World.settle world;
  Alcotest.(check bool) "auto-revoked at expiry" false
    (Civ.is_valid civ appt.Oasis_cert.Appointment.id)

let suite =
  ( "civ",
    [
      Alcotest.test_case "issue and validate" `Quick test_issue_and_validate;
      Alcotest.test_case "replication lag" `Quick test_replication_lag;
      Alcotest.test_case "forward to primary" `Quick test_unreplicated_cert_forwarded_to_primary;
      Alcotest.test_case "revocation propagates" `Quick test_revocation_propagates;
      Alcotest.test_case "failover" `Quick test_failover;
      Alcotest.test_case "reads survive primary down" `Quick test_reads_survive_primary_down;
      Alcotest.test_case "all replicas down" `Quick test_all_replicas_down;
      Alcotest.test_case "round robin" `Quick test_round_robin_spreads_load;
      Alcotest.test_case "epoch rotation" `Quick test_epoch_rotation;
      Alcotest.test_case "backs service policy" `Quick test_civ_backs_service_policy;
      Alcotest.test_case "sync replication" `Quick test_sync_replication_no_staleness;
      Alcotest.test_case "reissue after rotation" `Quick test_reissue_after_rotation;
      Alcotest.test_case "expiring certificate" `Quick test_expiring_civ_certificate;
    ] )
