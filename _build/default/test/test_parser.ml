(* The textual policy language. *)

module Parser = Oasis_policy.Parser
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident

let parse_one src =
  match Parser.parse src with
  | Ok [ statement ] -> statement
  | Ok statements -> Alcotest.failf "expected one statement, got %d" (List.length statements)
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let activation src =
  match parse_one src with
  | Parser.Activation a -> a
  | Parser.Authorization _ | Parser.Appointer _ -> Alcotest.fail "expected activation"

let authorization src =
  match parse_one src with
  | Parser.Authorization a -> a
  | Parser.Activation _ | Parser.Appointer _ -> Alcotest.fail "expected authorization"

let test_simple_activation () =
  let a = activation "doctor(u) <- logged_in(u), appt:qualified(u);" in
  Alcotest.(check string) "role" "doctor" a.Rule.role;
  Alcotest.(check int) "params" 1 (List.length a.Rule.params);
  Alcotest.(check int) "conditions" 2 (List.length a.Rule.conditions);
  Alcotest.(check (list bool)) "no membership marks" [ false; false ] a.Rule.membership;
  Alcotest.(check bool) "not initial" false a.Rule.initial

let test_membership_stars () =
  let a = activation "doctor(u) <- *logged_in(u), appt:qualified(u), *env:on_duty(u);" in
  Alcotest.(check (list bool)) "marks" [ true; false; true ] a.Rule.membership

let test_initial () =
  let a = activation "initial logged_in(u) <- appt:employee(u);" in
  Alcotest.(check bool) "initial" true a.Rule.initial

let test_initial_no_conditions () =
  let a = activation "initial guest;" in
  Alcotest.(check bool) "initial" true a.Rule.initial;
  Alcotest.(check int) "no conditions" 0 (List.length a.Rule.conditions)

let test_service_qualifier () =
  let a = activation "visiting_doctor(u) <- appt:employed_as_doctor(u)@hospital;" in
  match a.Rule.conditions with
  | [ Rule.Appointment { service = Some "hospital"; name = "employed_as_doctor"; _ } ] -> ()
  | _ -> Alcotest.fail "wrong condition shape"

let test_prereq_service_qualifier () =
  let a = activation "x(u) <- some_role(u)@national;" in
  match a.Rule.conditions with
  | [ Rule.Prereq { service = Some "national"; name = "some_role"; _ } ] -> ()
  | _ -> Alcotest.fail "wrong condition shape"

let test_env_negation () =
  let a = activation "t(d, p) <- doctor(d), env:!excluded(d, p);" in
  match a.Rule.conditions with
  | [ _; Rule.Constraint ("!excluded", [ Term.Var "d"; Term.Var "p" ]) ] -> ()
  | _ -> Alcotest.fail "wrong negation parse"

let test_constants () =
  let a = activation {|r(x) <- env:check(x, 5, "text", true, false, 2.5, svc#3);|} in
  match a.Rule.conditions with
  | [ Rule.Constraint ("check", args) ] ->
      let expected =
        [
          Term.Var "x";
          Term.Const (Value.Int 5);
          Term.Const (Value.Str "text");
          Term.Const (Value.Bool true);
          Term.Const (Value.Bool false);
          Term.Const (Value.Time 2.5);
          Term.Const (Value.Id (Ident.make "svc" 3));
        ]
      in
      List.iter2
        (fun got want -> Alcotest.(check bool) "term" true (Term.equal got want))
        args expected
  | _ -> Alcotest.fail "wrong constants parse"

let test_negative_int () =
  let a = activation "r(x) <- env:check(-5);" in
  match a.Rule.conditions with
  | [ Rule.Constraint ("check", [ Term.Const (Value.Int -5) ]) ] -> ()
  | _ -> Alcotest.fail "negative int"

let test_appoint_rule () =
  match parse_one "appoint allocated(d, pat) <- screening_nurse(n);" with
  | Parser.Appointer a ->
      Alcotest.(check string) "kind" "allocated" a.Rule.privilege;
      Alcotest.(check int) "args" 2 (List.length a.Rule.priv_args);
      Alcotest.(check int) "role conditions" 1 (List.length a.Rule.required_roles)
  | _ -> Alcotest.fail "expected appointer rule"

let test_priv_rule () =
  let p = authorization "priv read_record(doc, pat) <- treating_doctor(doc, pat), env:!excluded(doc, pat);" in
  Alcotest.(check string) "privilege" "read_record" p.Rule.privilege;
  Alcotest.(check int) "roles" 1 (List.length p.Rule.required_roles);
  Alcotest.(check int) "constraints" 1 (List.length p.Rule.constraints)

let test_priv_rejects_appointments () =
  match Parser.parse "priv x(u) <- appt:k(u);" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject appointment in priv rule"

let test_priv_rejects_stars () =
  match Parser.parse "priv x(u) <- *r(u);" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject membership mark in priv rule"

let test_multiple_statements_and_comments () =
  let src =
    {|
      // hospital policy
      initial logged_in(u) <- appt:employee(u); // login
      doctor(u) <- *logged_in(u), appt:qualified(u);
      priv read(u) <- doctor(u);
    |}
  in
  match Parser.parse src with
  | Ok statements ->
      Alcotest.(check int) "three statements" 3 (List.length statements);
      Alcotest.(check int) "two activations" 2 (List.length (Parser.activations statements));
      Alcotest.(check int) "one authorization" 1 (List.length (Parser.authorizations statements))
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let expect_error ?line src =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "expected syntax error for %S" src
  | Error e -> (
      match line with
      | Some l -> Alcotest.(check int) "error line" l e.Parser.line
      | None -> ())

let test_errors () =
  expect_error "doctor(u <- x(u);";
  expect_error "doctor(u) <- ;";
  expect_error "doctor(u) <- x(u)" (* missing terminator *);
  expect_error "(u) <- x(u);";
  expect_error {|r(x) <- env:check("unterminated);|};
  expect_error "r(x) <- env:check(x) extra;";
  expect_error ~line:3 "r(x) <- a(x);\n// fine\nbroken(((;\n"

let test_initial_with_prereq_rejected () =
  (* The Rule smart constructor's check surfaces as a parse error. *)
  expect_error "initial r(u) <- other(u);"

let test_empty_input () =
  match Parser.parse "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected no statements"
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let test_parse_exn () =
  Alcotest.(check bool) "raises Failure" true
    (match Parser.parse_exn "nonsense(((" with
    | _ -> false
    | exception Failure _ -> true)

let test_zero_arity_roles () =
  let a = activation "boot <- env:eq(1, 1);" in
  Alcotest.(check string) "role" "boot" a.Rule.role;
  Alcotest.(check int) "no params" 0 (List.length a.Rule.params);
  let b = activation "boot() <- env:eq(1, 1);" in
  Alcotest.(check int) "explicit empty parens" 0 (List.length b.Rule.params)

let suite =
  ( "parser",
    [
      Alcotest.test_case "simple activation" `Quick test_simple_activation;
      Alcotest.test_case "membership stars" `Quick test_membership_stars;
      Alcotest.test_case "initial" `Quick test_initial;
      Alcotest.test_case "initial bare" `Quick test_initial_no_conditions;
      Alcotest.test_case "service qualifier" `Quick test_service_qualifier;
      Alcotest.test_case "prereq qualifier" `Quick test_prereq_service_qualifier;
      Alcotest.test_case "env negation" `Quick test_env_negation;
      Alcotest.test_case "constants" `Quick test_constants;
      Alcotest.test_case "negative int" `Quick test_negative_int;
      Alcotest.test_case "priv rule" `Quick test_priv_rule;
      Alcotest.test_case "appoint rule" `Quick test_appoint_rule;
      Alcotest.test_case "priv rejects appt" `Quick test_priv_rejects_appointments;
      Alcotest.test_case "priv rejects stars" `Quick test_priv_rejects_stars;
      Alcotest.test_case "statements and comments" `Quick test_multiple_statements_and_comments;
      Alcotest.test_case "syntax errors" `Quick test_errors;
      Alcotest.test_case "initial with prereq" `Quick test_initial_with_prereq_rejected;
      Alcotest.test_case "empty input" `Quick test_empty_input;
      Alcotest.test_case "parse_exn" `Quick test_parse_exn;
      Alcotest.test_case "zero arity" `Quick test_zero_arity_roles;
    ] )
