test/test_codec.ml: Alcotest Bytes Char Float Gen List Oasis_cert Oasis_crypto Oasis_util Printf QCheck String
