test/test_scenario.ml: Alcotest List Oasis_policy Oasis_script String
