test/test_trust.ml: Alcotest List Oasis_trust Oasis_util Printf
