test/test_printer.ml: Alcotest List Oasis_policy Oasis_util QCheck String
