test/test_parser.ml: Alcotest List Oasis_policy Oasis_util
