test/test_challenge.ml: Alcotest Int64 Oasis_crypto Oasis_util String
