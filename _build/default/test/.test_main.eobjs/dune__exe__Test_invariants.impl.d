test/test_invariants.ml: Alcotest Array Buffer Hashtbl List Oasis_cert Oasis_core Oasis_domain Oasis_policy Oasis_util Printf QCheck Seq String
