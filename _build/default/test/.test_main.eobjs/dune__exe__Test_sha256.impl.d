test/test_sha256.ml: Alcotest Char Gen List Oasis_crypto Printf QCheck String
