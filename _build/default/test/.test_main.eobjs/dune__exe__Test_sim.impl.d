test/test_sim.ml: Alcotest List Oasis_sim Oasis_util
