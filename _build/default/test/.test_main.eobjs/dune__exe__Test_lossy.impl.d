test/test_lossy.ml: Alcotest Oasis_cert Oasis_core Oasis_sim Printf
