test/test_network.ml: Alcotest List Oasis_sim Oasis_util Printf
