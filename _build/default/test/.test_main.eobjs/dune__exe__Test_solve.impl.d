test/test_solve.ml: Alcotest List Oasis_policy Oasis_util Option Printf QCheck String
