test/test_event.ml: Alcotest List Oasis_event Oasis_sim Oasis_util Printf
