test/test_baseline.ml: Alcotest List Oasis_baseline Oasis_util Printf
