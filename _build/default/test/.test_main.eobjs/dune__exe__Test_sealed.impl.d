test/test_sealed.ml: Alcotest Bytes Char Gen List Oasis_crypto Oasis_util QCheck String
