test/test_modp.ml: Alcotest Int64 List Oasis_crypto Oasis_util
