test/test_domain.ml: Alcotest Format List Oasis_cert Oasis_core Oasis_domain Oasis_policy Oasis_util Option String
