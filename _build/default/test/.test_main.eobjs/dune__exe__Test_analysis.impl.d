test/test_analysis.ml: Alcotest Format List Oasis_policy String
