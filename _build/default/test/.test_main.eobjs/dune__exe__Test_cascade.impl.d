test/test_cascade.ml: Alcotest Array Fixtures List Oasis_cert Oasis_core Oasis_event Oasis_util Printf
