test/test_rng.ml: Alcotest Array Bytes Fun Int64 List Oasis_util
