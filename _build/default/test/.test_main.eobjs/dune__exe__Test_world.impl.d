test/test_world.ml: Alcotest List Oasis_cert Oasis_core Oasis_domain Oasis_policy Oasis_sim Oasis_trust Oasis_util String
