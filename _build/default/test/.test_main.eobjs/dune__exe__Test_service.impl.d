test/test_service.ml: Alcotest Fixtures List Oasis_cert Oasis_core Oasis_policy Oasis_util
