test/test_security.ml: Alcotest Fixtures List Oasis_cert Oasis_core Oasis_crypto Oasis_policy Oasis_sim Oasis_util
