test/test_civ.ml: Alcotest Array List Oasis_cert Oasis_core Oasis_domain Oasis_sim Oasis_util Printf String
