test/test_ident.ml: Alcotest List Oasis_util
