test/test_cert.ml: Alcotest List Oasis_cert Oasis_crypto Oasis_util String
