test/test_value.ml: Alcotest Buffer Format List Oasis_util String
