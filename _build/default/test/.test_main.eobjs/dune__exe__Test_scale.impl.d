test/test_scale.ml: Alcotest Array Fixtures Format List Oasis_cert Oasis_core Oasis_domain Oasis_sim Oasis_util Printf String
