test/fixtures.ml: Alcotest Oasis_cert Oasis_core Oasis_policy Oasis_util
