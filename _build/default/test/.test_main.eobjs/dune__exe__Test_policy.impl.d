test/test_policy.ml: Alcotest Format List Oasis_policy Oasis_util Option String
