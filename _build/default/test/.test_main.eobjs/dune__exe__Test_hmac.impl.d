test/test_hmac.ml: Alcotest Oasis_crypto QCheck String
