(* Scale sanity: wider worlds with activation storms, decommissioning, and
   packet tracing. Guards against accidental quadratic blowups in the hot
   paths and exercises the administrative bulk operations. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Network = Oasis_sim.Network
module Value = Oasis_util.Value
open Fixtures

let test_activation_storm () =
  (* 20 services x 30 principals, each principal active at 5 services. *)
  let world = World.create ~seed:77 () in
  let civ = Civ.create world ~name:"authority" () in
  let services =
    Array.init 20 (fun i ->
        Service.create world
          ~name:(Printf.sprintf "svc%d" i)
          ~policy:"initial member(u) <- *appt:badge(u)@authority;" ())
  in
  let principals =
    Array.init 30 (fun i ->
        let p = Principal.create world ~name:(Printf.sprintf "p%d" i) in
        Principal.grant_appointment p
          (Civ.issue civ ~kind:"badge"
             ~args:[ Value.Id (Principal.id p) ]
             ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ());
        p)
  in
  World.settle world;
  Array.iteri
    (fun pi p ->
      World.run_proc world (fun () ->
          let s = Principal.start_session p in
          for k = 0 to 4 do
            let svc = services.((pi + k) mod 20) in
            ignore (ok (Principal.activate p s svc ~role:"member" ()))
          done))
    principals;
  let total =
    Array.fold_left (fun acc s -> acc + List.length (Service.active_roles s)) 0 services
  in
  Alcotest.(check int) "150 active roles" 150 total;
  (* Revoking one badge kills exactly that principal's 5 roles. *)
  let victim = principals.(0) in
  let badge = List.hd (Principal.appointments victim) in
  ignore (Civ.revoke civ badge.Oasis_cert.Appointment.id ~reason:"offboarded");
  World.settle world;
  let total' =
    Array.fold_left (fun acc s -> acc + List.length (Service.active_roles s)) 0 services
  in
  Alcotest.(check int) "five roles collapsed" 145 total'

let test_decommission () =
  let t = make () in
  let _session = alice_treating t ~patient:7 in
  let before = List.length (Service.active_roles t.hospital) in
  Alcotest.(check bool) "some roles active" true (before > 0);
  let withdrawn = Service.decommission t.hospital ~reason:"service retired" in
  World.settle t.world;
  Alcotest.(check int) "no active roles" 0 (List.length (Service.active_roles t.hospital));
  (* RMCs for alice's 3 roles + admin's bootstrap/hr_admin + 3 appointments. *)
  Alcotest.(check bool) (Printf.sprintf "withdrew %d" withdrawn) true (withdrawn >= before);
  (* Nothing works any more. *)
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      match Principal.activate t.alice s t.hospital ~role:"logged_in" () with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "decommissioned service still grants")

let test_tracer_sees_traffic () =
  let t = make () in
  let seen = ref [] in
  Network.set_tracer (World.network t.world)
    (Some
       (fun ~src ~dst msg ->
         seen := (src, dst, Format.asprintf "%a" Protocol.pp_msg msg) :: !seen));
  let _session = alice_treating t ~patient:7 in
  Network.set_tracer (World.network t.world) None;
  Alcotest.(check bool) "traffic observed" true (List.length !seen >= 6);
  Alcotest.(check bool) "activations visible" true
    (List.exists (fun (_, _, m) -> String.length m >= 8 && String.sub m 0 8 = "Activate") !seen);
  (* Tracer removal stops observation. *)
  let before = List.length !seen in
  ignore (alice_treating t ~patient:8);
  Alcotest.(check int) "no further traces" before (List.length !seen)

let suite =
  ( "scale",
    [
      Alcotest.test_case "activation storm" `Slow test_activation_storm;
      Alcotest.test_case "decommission" `Quick test_decommission;
      Alcotest.test_case "tracer" `Quick test_tracer_sees_traffic;
    ] )
