module Value = Oasis_util.Value
module Ident = Oasis_util.Ident

let value = Alcotest.testable Value.pp Value.equal

let samples =
  [
    Value.Int 0;
    Value.Int (-3);
    Value.Int 12345;
    Value.Str "";
    Value.Str "hello";
    Value.Str "with spaces";
    Value.Bool true;
    Value.Bool false;
    Value.Time 0.0;
    Value.Time 1.5;
    Value.Id (Ident.make "p" 7);
  ]

let test_equal_reflexive () =
  List.iter (fun v -> Alcotest.(check value) "reflexive" v v) samples

let test_compare_distinct () =
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Alcotest.(check bool)
              (Format.asprintf "%a <> %a" Value.pp a Value.pp b)
              false (Value.equal a b))
        samples)
    samples

let test_compare_antisymmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check int) "antisymmetric" (compare c1 0) (compare 0 c2))
        samples)
    samples

let test_of_string () =
  Alcotest.(check value) "int" (Value.Int 42) (Value.of_string "42");
  Alcotest.(check value) "negative" (Value.Int (-1)) (Value.of_string "-1");
  Alcotest.(check value) "bool true" (Value.Bool true) (Value.of_string "true");
  Alcotest.(check value) "bool false" (Value.Bool false) (Value.of_string "false");
  Alcotest.(check value) "time" (Value.Time 2.5) (Value.of_string "t:2.5");
  Alcotest.(check value) "ident" (Value.Id (Ident.make "svc" 3)) (Value.of_string "svc#3");
  Alcotest.(check value) "fallback string" (Value.Str "plain") (Value.of_string "plain")

let test_to_string_roundtrip () =
  List.iter
    (fun v ->
      match v with
      | Value.Str "" | Value.Str "with spaces" -> () (* not round-trippable by design *)
      | _ -> Alcotest.(check value) "of_string . to_string" v (Value.of_string (Value.to_string v)))
    samples

let encode v =
  let b = Buffer.create 16 in
  Value.encode b v;
  Buffer.contents b

let test_encode_injective () =
  (* Distinct values encode distinctly (prefix games must not collapse). *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Alcotest.(check bool) "distinct encodings" false (String.equal (encode a) (encode b)))
        samples)
    samples

let test_encode_type_tagged () =
  (* Int 1 and Str "1" and Bool true must differ. *)
  let e1 = encode (Value.Int 1) and e2 = encode (Value.Str "1") in
  Alcotest.(check bool) "int vs str" false (String.equal e1 e2)

let test_list_encoding_unambiguous () =
  (* ["ab"; "c"] vs ["a"; "bc"] — length prefixes must separate them. *)
  let enc vs =
    let b = Buffer.create 16 in
    List.iter (Value.encode b) vs;
    Buffer.contents b
  in
  Alcotest.(check bool) "no concat collision" false
    (String.equal (enc [ Value.Str "ab"; Value.Str "c" ]) (enc [ Value.Str "a"; Value.Str "bc" ]))

let test_type_name () =
  Alcotest.(check string) "int" "int" (Value.type_name (Value.Int 1));
  Alcotest.(check string) "str" "str" (Value.type_name (Value.Str "x"));
  Alcotest.(check string) "bool" "bool" (Value.type_name (Value.Bool true));
  Alcotest.(check string) "time" "time" (Value.type_name (Value.Time 1.0));
  Alcotest.(check string) "id" "id" (Value.type_name (Value.Id (Ident.make "a" 0)))

let suite =
  ( "value",
    [
      Alcotest.test_case "equal reflexive" `Quick test_equal_reflexive;
      Alcotest.test_case "distinct samples" `Quick test_compare_distinct;
      Alcotest.test_case "compare antisymmetric" `Quick test_compare_antisymmetric;
      Alcotest.test_case "of_string" `Quick test_of_string;
      Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
      Alcotest.test_case "encode injective" `Quick test_encode_injective;
      Alcotest.test_case "encode type tagged" `Quick test_encode_type_tagged;
      Alcotest.test_case "list encoding unambiguous" `Quick test_list_encoding_unambiguous;
      Alcotest.test_case "type names" `Quick test_type_name;
    ] )
