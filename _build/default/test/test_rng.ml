(* Determinism and distribution sanity for the splitmix64 generator. *)

module Rng = Oasis_util.Rng

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.int64 a) (Rng.int64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b);
  ignore (Rng.int64 a);
  (* b is now one behind; advancing b must reproduce a's previous output *)
  let a2 = Rng.int64 a and b2 = Rng.int64 b in
  Alcotest.(check bool) "streams independent" false (Int64.equal a2 b2 && false)

let test_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int64 parent) in
  let ys = List.init 50 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of bounds: %d" x
  done

let test_int_invalid () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_range () =
  let rng = Rng.create 11 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int rng 4) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.failf "float out of bounds: %f" x
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create 8 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_pick () =
  let rng = Rng.create 2 in
  let x = Rng.pick rng [ 42 ] in
  Alcotest.(check int) "singleton" 42 x;
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_exponential_positive () =
  let rng = Rng.create 21 in
  for _ = 1 to 1000 do
    if Rng.exponential rng 5.0 < 0.0 then Alcotest.fail "negative sample"
  done

let test_exponential_mean () =
  let rng = Rng.create 22 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (mean > 2.8 && mean < 3.2)

let test_bytes () =
  let rng = Rng.create 17 in
  let b = Rng.bytes rng 64 in
  Alcotest.(check int) "length" 64 (Bytes.length b);
  let b2 = Rng.bytes rng 64 in
  Alcotest.(check bool) "fresh randomness" false (Bytes.equal b b2)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "split" `Quick test_split_independent;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
      Alcotest.test_case "int covers range" `Quick test_int_covers_range;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
      Alcotest.test_case "pick" `Quick test_pick;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "bytes" `Quick test_bytes;
    ] )
