(* Audit certificates, registrars, histories and risk assessment (Sect. 6). *)

module Audit = Oasis_trust.Audit
module Registrar = Oasis_trust.Registrar
module History = Oasis_trust.History
module Assess = Oasis_trust.Assess
module Simulation = Oasis_trust.Simulation
module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng

let client = Ident.make "client" 1
let server = Ident.make "server" 1

let registrar () = Registrar.create (Rng.create 3) ~name:"main" ()
let rogue () = Registrar.create (Rng.create 4) ~name:"rogue" ~honest:false ()

let record ?(at = 1.0) ?(client_outcome = Audit.Fulfilled) ?(server_outcome = Audit.Fulfilled) reg =
  Registrar.record_interaction reg ~client ~server ~at ~client_outcome ~server_outcome

(* ---------------- Audit certificates ---------------- *)

let test_audit_validate () =
  let reg = registrar () in
  let cert = record reg in
  Alcotest.(check bool) "validates" true (Registrar.validate reg cert);
  Alcotest.(check int) "validation counted" 1 (Registrar.validations reg);
  Alcotest.(check int) "issued counted" 1 (Registrar.issued_count reg)

let test_audit_tamper () =
  let reg = registrar () in
  let cert = record reg ~server_outcome:Audit.Breached in
  (* The server would love to flip its outcome. *)
  let laundered = Audit.with_server_outcome cert Audit.Fulfilled in
  Alcotest.(check bool) "tampered rejected" false (Registrar.validate reg laundered)

let test_audit_wrong_registrar () =
  let reg = registrar () in
  let other = Registrar.create (Rng.create 9) ~name:"other" () in
  let cert = record reg in
  Alcotest.(check bool) "unknown issuer rejected" false (Registrar.validate other cert)

let test_audit_outcome_for () =
  let reg = registrar () in
  let cert = record reg ~client_outcome:Audit.Breached ~server_outcome:Audit.Fulfilled in
  Alcotest.(check bool) "client side" true (Audit.outcome_for cert client = Some Audit.Breached);
  Alcotest.(check bool) "server side" true (Audit.outcome_for cert server = Some Audit.Fulfilled);
  Alcotest.(check bool) "stranger" true (Audit.outcome_for cert (Ident.make "x" 9) = None);
  Alcotest.(check bool) "involves" true (Audit.involves cert client && Audit.involves cert server)

let test_rogue_fabricate_and_repudiate () =
  let reg = registrar () in
  Alcotest.(check bool) "honest cannot fabricate" true
    (match Registrar.fabricate reg ~client ~server ~at:1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let r = rogue () in
  let fake = Registrar.fabricate r ~client ~server ~at:1.0 in
  Alcotest.(check bool) "fabrication validates at rogue" true (Registrar.validate r fake);
  let genuine = record r in
  Registrar.repudiate r genuine.Audit.id;
  Alcotest.(check bool) "repudiated no longer validates" false (Registrar.validate r genuine)

(* ---------------- Histories ---------------- *)

let test_history () =
  let reg = registrar () in
  let h = History.create server in
  History.add h (record reg);
  History.add h (record reg ~server_outcome:Audit.Breached);
  (* A certificate not involving the owner is ignored. *)
  History.add h
    (Registrar.record_interaction reg ~client ~server:(Ident.make "other" 1) ~at:2.0
       ~client_outcome:Audit.Fulfilled ~server_outcome:Audit.Fulfilled);
  Alcotest.(check int) "size" 2 (History.size h);
  Alcotest.(check int) "favourable filters breaches" 1
    (List.length (History.present_favourable h))

(* ---------------- Assessment ---------------- *)

let test_assess_no_evidence () =
  let a = Assess.create () in
  let verdict = Assess.assess a ~validate:(fun _ -> true) ~subject:server ~presented:[] in
  Alcotest.(check (float 1e-9)) "prior" 0.5 verdict.Assess.score;
  Alcotest.(check bool) "threshold 0.5 proceeds on prior" true verdict.Assess.proceed

let test_assess_scores () =
  let reg = registrar () in
  let a = Assess.create ~threshold:0.6 () in
  let good = List.init 8 (fun _ -> record reg) in
  let verdict =
    Assess.assess a ~validate:(Registrar.validate reg) ~subject:server ~presented:good
  in
  Alcotest.(check bool) "good history scores high" true (verdict.Assess.score > 0.8);
  Alcotest.(check bool) "proceeds" true verdict.Assess.proceed;
  let bad = List.init 8 (fun _ -> record reg ~server_outcome:Audit.Breached) in
  let verdict2 =
    Assess.assess a ~validate:(Registrar.validate reg) ~subject:server ~presented:bad
  in
  Alcotest.(check bool) "bad history scores low" true (verdict2.Assess.score < 0.2);
  Alcotest.(check bool) "refuses" false verdict2.Assess.proceed

let test_assess_rejects_invalid () =
  let reg = registrar () in
  let a = Assess.create () in
  let cert = record reg in
  let forged = Audit.with_server_outcome (record reg ~server_outcome:Audit.Breached) Audit.Fulfilled in
  let verdict =
    Assess.assess a ~validate:(Registrar.validate reg) ~subject:server
      ~presented:[ cert; forged ]
  in
  Alcotest.(check int) "forged rejected" 1 verdict.Assess.rejected;
  Alcotest.(check int) "one piece of evidence" 1 (List.length verdict.Assess.evidence)

let test_feedback_discounts_vouchers () =
  let r = rogue () in
  (* Threshold above the 0.5 prior: discounted testimony converges to the
     prior, so heavily-discounted fakes stop clearing the bar. *)
  let a = Assess.create ~threshold:0.6 () in
  let fakes = List.init 6 (fun _ -> Registrar.fabricate r ~client ~server ~at:1.0) in
  let verdict = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
  Alcotest.(check bool) "initially fooled" true verdict.Assess.proceed;
  (* The server breaches; the rogue registrar's weight collapses. *)
  Assess.feedback a verdict ~actual:Audit.Breached;
  Alcotest.(check bool) "weight halved" true (Assess.registrar_weight a (Registrar.id r) <= 0.5);
  (* Iterate: the same fakes soon stop clearing the threshold. *)
  let rec hammer n =
    if n = 0 then ()
    else begin
      let v = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
      if v.Assess.proceed then begin
        Assess.feedback a v ~actual:Audit.Breached;
        hammer (n - 1)
      end
    end
  in
  hammer 20;
  let final = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
  Alcotest.(check bool) "eventually refuses" false final.Assess.proceed

let test_feedback_disabled () =
  let r = rogue () in
  let a = Assess.create ~discounting:false () in
  let fakes = List.init 6 (fun _ -> Registrar.fabricate r ~client ~server ~at:1.0) in
  let verdict = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
  Assess.feedback a verdict ~actual:Audit.Breached;
  Alcotest.(check (float 1e-9)) "weight unchanged" 1.0 (Assess.registrar_weight a (Registrar.id r))

let test_assess_invalid_threshold () =
  Alcotest.(check bool) "raises" true
    (match Assess.create ~threshold:1.5 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------- Population simulation ---------------- *)

let test_simulation_deterministic () =
  let params = { Simulation.default_params with rounds = 10; servers = 20; clients = 20 } in
  let r1 = Simulation.run params and r2 = Simulation.run params in
  Alcotest.(check (float 1e-12)) "same final accuracy" r1.Simulation.final_accuracy
    r2.Simulation.final_accuracy;
  Alcotest.(check int) "rounds recorded" 10 (List.length r1.Simulation.per_round)

let test_simulation_honest_population () =
  let params =
    { Simulation.default_params with byzantine_fraction = 0.0; rounds = 10 }
  in
  let r = Simulation.run params in
  Alcotest.(check bool)
    (Printf.sprintf "all accepts correct (%.2f)" r.Simulation.final_accuracy)
    true (r.Simulation.final_accuracy > 0.95)

let test_simulation_detects_byzantine () =
  let params =
    { Simulation.default_params with byzantine_fraction = 0.3; rounds = 40 }
  in
  let r = Simulation.run params in
  let first = List.hd r.Simulation.per_round in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy improves (%.2f -> %.2f)" first.Simulation.accuracy
       r.Simulation.final_accuracy)
    true
    (r.Simulation.final_accuracy > 0.8 && r.Simulation.final_accuracy > first.Simulation.accuracy)

let test_simulation_collusion_needs_discounting () =
  let base =
    {
      Simulation.default_params with
      byzantine_fraction = 0.0;
      colluder_fraction = 0.25;
      colluder_padding = 3;
      rounds = 40;
    }
  in
  let with_disc = Simulation.run { base with discounting = true } in
  let without = Simulation.run { base with discounting = false } in
  Alcotest.(check bool)
    (Printf.sprintf "discounting beats none (%.2f vs %.2f)" with_disc.Simulation.final_accuracy
       without.Simulation.final_accuracy)
    true
    (with_disc.Simulation.final_accuracy > without.Simulation.final_accuracy);
  (* And the rogue registrar's reputation visibly collapses. *)
  let last = List.nth with_disc.Simulation.per_round 39 in
  Alcotest.(check bool)
    (Printf.sprintf "rogue weight fell (%.3f)" last.Simulation.mean_rogue_weight)
    true (last.Simulation.mean_rogue_weight < 0.5)

let test_simulation_validates_params () =
  Alcotest.(check bool) "small population raises" true
    (match Simulation.run { Simulation.default_params with servers = 1 } with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "fractions over 1 raise" true
    (match
       Simulation.run
         { Simulation.default_params with byzantine_fraction = 0.8; colluder_fraction = 0.8 }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  ( "trust",
    [
      Alcotest.test_case "audit validate" `Quick test_audit_validate;
      Alcotest.test_case "audit tamper" `Quick test_audit_tamper;
      Alcotest.test_case "audit wrong registrar" `Quick test_audit_wrong_registrar;
      Alcotest.test_case "audit outcome_for" `Quick test_audit_outcome_for;
      Alcotest.test_case "rogue fabricate/repudiate" `Quick test_rogue_fabricate_and_repudiate;
      Alcotest.test_case "history" `Quick test_history;
      Alcotest.test_case "assess prior" `Quick test_assess_no_evidence;
      Alcotest.test_case "assess scores" `Quick test_assess_scores;
      Alcotest.test_case "assess rejects invalid" `Quick test_assess_rejects_invalid;
      Alcotest.test_case "feedback discounts" `Quick test_feedback_discounts_vouchers;
      Alcotest.test_case "feedback disabled" `Quick test_feedback_disabled;
      Alcotest.test_case "invalid threshold" `Quick test_assess_invalid_threshold;
      Alcotest.test_case "simulation deterministic" `Quick test_simulation_deterministic;
      Alcotest.test_case "honest population" `Quick test_simulation_honest_population;
      Alcotest.test_case "byzantine detection" `Slow test_simulation_detects_byzantine;
      Alcotest.test_case "collusion vs discounting" `Slow test_simulation_collusion_needs_discounting;
      Alcotest.test_case "parameter validation" `Quick test_simulation_validates_params;
    ] )
