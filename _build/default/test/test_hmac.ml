(* RFC 4231 test vectors for HMAC-SHA256. *)

module Hmac = Oasis_crypto.Hmac
module Sha256 = Oasis_crypto.Sha256

let check_mac name ~key ~msg expected =
  Alcotest.(check string) name expected (Sha256.to_hex (Hmac.mac ~key msg))

let test_rfc4231_case1 () =
  check_mac "case 1"
    ~key:(String.make 20 '\x0b')
    ~msg:"Hi There" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"

let test_rfc4231_case2 () =
  check_mac "case 2" ~key:"Jefe" ~msg:"what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"

let test_rfc4231_case3 () =
  check_mac "case 3" ~key:(String.make 20 '\xaa') ~msg:(String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"

let test_rfc4231_case6_long_key () =
  (* Key longer than the block size: must be hashed down first. *)
  check_mac "case 6" ~key:(String.make 131 '\xaa')
    ~msg:"Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"

let test_verify () =
  let key = "secret" and msg = "message" in
  let mac = Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key msg mac);
  Alcotest.(check bool) "rejects wrong msg" false (Hmac.verify ~key "other" mac);
  Alcotest.(check bool) "rejects wrong key" false (Hmac.verify ~key:"wrong" msg mac)

let test_key_sensitivity () =
  (* Equal up to padding: "key" and "key\x00" are distinct RFC 2104 keys in
     principle, but zero-padding makes them collide — document the known
     HMAC property rather than pretend otherwise. *)
  let m1 = Hmac.mac ~key:"key" "m" and m2 = Hmac.mac ~key:"key\x00" "m" in
  Alcotest.(check bool) "zero-pad collision (RFC 2104 property)" true (Sha256.equal m1 m2);
  let m3 = Hmac.mac ~key:"kez" "m" in
  Alcotest.(check bool) "different key differs" false (Sha256.equal m1 m3)

let test_derive_key () =
  let key = "master" in
  let k1 = Hmac.derive_key ~key "epoch:1" in
  let k2 = Hmac.derive_key ~key "epoch:2" in
  Alcotest.(check int) "32-byte subkeys" 32 (String.length k1);
  Alcotest.(check bool) "labels separate" false (String.equal k1 k2);
  Alcotest.(check string) "deterministic" k1 (Hmac.derive_key ~key "epoch:1")

let test_qcheck_determinism () =
  let gen = QCheck.(pair (string_of_size QCheck.Gen.(int_bound 200)) (string_of_size QCheck.Gen.(int_bound 200))) in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"mac deterministic" gen (fun (key, msg) ->
         Sha256.equal (Hmac.mac ~key msg) (Hmac.mac ~key msg)))

let suite =
  ( "hmac",
    [
      Alcotest.test_case "RFC 4231 case 1" `Quick test_rfc4231_case1;
      Alcotest.test_case "RFC 4231 case 2" `Quick test_rfc4231_case2;
      Alcotest.test_case "RFC 4231 case 3" `Quick test_rfc4231_case3;
      Alcotest.test_case "RFC 4231 case 6 (long key)" `Quick test_rfc4231_case6_long_key;
      Alcotest.test_case "verify" `Quick test_verify;
      Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
      Alcotest.test_case "derive_key" `Quick test_derive_key;
      Alcotest.test_case "determinism (qcheck)" `Quick test_qcheck_determinism;
    ] )
