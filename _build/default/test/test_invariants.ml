(* Randomised whole-system invariants.

   Generates random worlds (an authority CIV plus a layer of services whose
   policies form a random dependency structure, all conditions
   membership-monitored) and random action sequences (grants, sessions,
   activations, revocations, environment changes). After the dust settles,
   the OASIS safety invariants must hold GLOBALLY:

     I1  an active base role implies a currently valid supporting
         appointment certificate for that principal;
     I2  role dependency: mid active => base active; top active => mid
         active (per service, per principal);
     I3  an active top role implies its environmental flag still holds;
     I4  bookkeeping: activations granted = audited activations; active
         roles never exceed grants;
     I5  determinism: the same seed produces the identical trace summary. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment

let n_services = 4
let n_kinds = 3
let n_principals = 5
let n_actions = 80

type fixture = {
  world : World.t;
  civ : Civ.t;
  services : Service.t array;
  kinds : string array;
  principals : Principal.t array;
  sessions : (int, Principal.session) Hashtbl.t; (* principal index -> session *)
  mutable grants : int;
  mutable attempts : int;
}

(* Service i's policy:
     base_i(u) <- *appt:kind_{i mod K}(u)@authority ;
     mid_i(u)  <- *base_i(u) ;
     top_i(u)  <- *mid_i(u), *env:flag(u) ;  *)
let build seed =
  let world = World.create ~seed () in
  let civ = Civ.create world ~name:"authority" () in
  let kinds = Array.init n_kinds (fun k -> Printf.sprintf "kind%d" k) in
  let services =
    Array.init n_services (fun i ->
        let policy =
          Printf.sprintf
            {|
              initial base%d(u) <- *appt:%s(u)@authority ;
              mid%d(u) <- *base%d(u) ;
              top%d(u) <- *mid%d(u), *env:flag(u) ;
            |}
            i
            kinds.(i mod n_kinds)
            i i i i
        in
        let svc = Service.create world ~name:(Printf.sprintf "svc%d" i) ~policy () in
        Env.declare_fact (Service.env svc) "flag";
        svc)
  in
  let principals =
    Array.init n_principals (fun i -> Principal.create world ~name:(Printf.sprintf "p%d" i))
  in
  {
    world;
    civ;
    services;
    kinds;
    principals;
    sessions = Hashtbl.create 8;
    grants = 0;
    attempts = 0;
  }

let session_for f pi =
  match Hashtbl.find_opt f.sessions pi with
  | Some s -> s
  | None ->
      let s = Principal.start_session f.principals.(pi) in
      Hashtbl.replace f.sessions pi s;
      s

let random_action f rng =
  let pi = Rng.int rng n_principals in
  let p = f.principals.(pi) in
  match Rng.int rng 10 with
  | 0 | 1 ->
      (* grant a random appointment kind *)
      let kind = f.kinds.(Rng.int rng n_kinds) in
      let appt =
        Civ.issue f.civ ~kind
          ~args:[ Value.Id (Principal.id p) ]
          ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ()
      in
      Principal.grant_appointment p appt;
      f.grants <- f.grants + 1
  | 2 | 3 | 4 | 5 ->
      (* try to activate a random role at a random service *)
      let si = Rng.int rng n_services in
      let role =
        match Rng.int rng 3 with
        | 0 -> Printf.sprintf "base%d" si
        | 1 -> Printf.sprintf "mid%d" si
        | _ -> Printf.sprintf "top%d" si
      in
      f.attempts <- f.attempts + 1;
      World.run_proc f.world (fun () ->
          match Principal.activate p (session_for f pi) f.services.(si) ~role () with
          | Ok _ | Error _ -> ())
  | 6 ->
      (* revoke one of the principal's appointment certificates *)
      (match Principal.appointments p with
      | [] -> ()
      | appts ->
          let appt = Rng.pick rng appts in
          ignore (Civ.revoke f.civ appt.Appointment.id ~reason:"random revocation"))
  | 7 ->
      (* flip the environment flag for this principal at one service *)
      let si = Rng.int rng n_services in
      let env = Service.env f.services.(si) in
      let args = [ Value.Id (Principal.id p) ] in
      if Env.check env "flag" args then Env.retract_fact env "flag" args
      else Env.assert_fact env "flag" args
  | 8 ->
      (* revoke a random active RMC at a random service *)
      let si = Rng.int rng n_services in
      (match Service.active_roles f.services.(si) with
      | [] -> ()
      | roles ->
          let cert_id, _, _, _ = Rng.pick rng roles in
          ignore (Service.revoke_certificate f.services.(si) cert_id ~reason:"random rmc kill"))
  | _ ->
      (* let things settle mid-sequence *)
      World.settle f.world

(* One principal's currently valid appointment kinds, per the authority. *)
let valid_kinds f p =
  List.filter_map
    (fun (a : Appointment.t) -> if Civ.is_valid f.civ a.Appointment.id then Some a.kind else None)
    (Principal.appointments p)

let active_by_role f si =
  List.fold_left
    (fun acc (_, role, _, principal) -> (role, principal) :: acc)
    []
    (Service.active_roles f.services.(si))

let check_invariants f =
  World.settle f.world;
  World.settle f.world;
  (* two horizons: cascades triggered in the first settle finish in the second *)
  for si = 0 to n_services - 1 do
    let active = active_by_role f si in
    let has role principal =
      List.exists (fun (r, p) -> String.equal r role && Ident.equal p principal) active
    in
    List.iter
      (fun (role, principal) ->
        let p =
          Array.to_list f.principals
          |> List.find_opt (fun p -> Ident.equal (Principal.id p) principal)
        in
        match p with
        | None -> Alcotest.failf "active role for unknown principal %s" (Ident.to_string principal)
        | Some p ->
            (* I2: dependency chains *)
            if String.length role >= 3 && String.sub role 0 3 = "mid" then begin
              if not (has (Printf.sprintf "base%d" si) principal) then
                Alcotest.failf "I2 violated: %s active without base%d for %s" role si
                  (Principal.name p)
            end;
            if String.length role >= 3 && String.sub role 0 3 = "top" then begin
              if not (has (Printf.sprintf "mid%d" si) principal) then
                Alcotest.failf "I2 violated: %s active without mid%d" role si;
              (* I3: the environmental flag must hold *)
              if
                not
                  (Env.check (Service.env f.services.(si)) "flag" [ Value.Id principal ])
              then Alcotest.failf "I3 violated: %s active with flag retracted" role
            end;
            (* I1: base roles require a live supporting appointment *)
            if String.length role >= 4 && String.sub role 0 4 = "base" then begin
              let needed = f.kinds.(si mod n_kinds) in
              if not (List.mem needed (valid_kinds f p)) then
                Alcotest.failf "I1 violated: base%d active for %s without valid %s" si
                  (Principal.name p) needed
            end)
      active;
    (* I4: bookkeeping *)
    let st = Service.stats f.services.(si) in
    let audited_activations =
      List.length
        (List.filter
           (fun (e : Service.audit_entry) ->
             String.length e.Service.action >= 9 && String.sub e.Service.action 0 9 = "activate:")
           (Service.audit_log f.services.(si)))
    in
    if st.Service.activations_granted <> audited_activations then
      Alcotest.failf "I4 violated at svc%d: %d granted vs %d audited" si
        st.Service.activations_granted audited_activations;
    if List.length (Service.active_roles f.services.(si)) > st.Service.activations_granted then
      Alcotest.fail "I4 violated: more active roles than grants"
  done

let summary f =
  let buffer = Buffer.create 256 in
  for si = 0 to n_services - 1 do
    let st = Service.stats f.services.(si) in
    Buffer.add_string buffer
      (Printf.sprintf "svc%d[+%d -%d act:%d rev:%d] " si st.Service.activations_granted
         st.Service.activations_denied
         (List.length (Service.active_roles f.services.(si)))
         st.Service.revocations)
  done;
  Buffer.contents buffer

let run_scenario seed =
  let f = build seed in
  let rng = Rng.create (seed * 7919) in
  World.settle f.world;
  for _ = 1 to n_actions do
    random_action f rng
  done;
  check_invariants f;
  summary f

let test_random_worlds () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:25 ~name:"random world invariants" QCheck.(int_range 1 10_000)
       (fun seed ->
         ignore (run_scenario seed);
         true))

let test_determinism () =
  (* I5: identical seeds, identical traces — and the traces show real
     activity (guards against the invariants passing vacuously). *)
  List.iter
    (fun seed ->
      let a = run_scenario seed and b = run_scenario seed in
      Alcotest.(check string) (Printf.sprintf "seed %d deterministic" seed) a b;
      let digits = String.to_seq a |> Seq.filter (fun c -> c >= '1' && c <= '9') in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d produced activity: %s" seed a)
        true
        (Seq.length digits > 4))
    [ 11; 42; 1234 ]

let suite =
  ( "invariants",
    [
      Alcotest.test_case "random worlds (qcheck)" `Slow test_random_worlds;
      Alcotest.test_case "determinism" `Quick test_determinism;
    ] )
