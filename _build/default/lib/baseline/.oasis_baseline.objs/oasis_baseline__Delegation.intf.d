lib/baseline/delegation.mli: Oasis_util Rbac96
