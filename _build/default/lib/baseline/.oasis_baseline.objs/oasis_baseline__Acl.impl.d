lib/baseline/acl.ml: Hashtbl Oasis_util Printf Set String
