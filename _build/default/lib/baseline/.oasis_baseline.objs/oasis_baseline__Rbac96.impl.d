lib/baseline/rbac96.ml: Hashtbl List Oasis_util Printf Set String
