lib/baseline/rbac96.mli: Oasis_util
