lib/baseline/acl.mli: Oasis_util
