lib/baseline/delegation.ml: List Oasis_util Printf Rbac96 String
