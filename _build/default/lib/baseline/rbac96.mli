(** Centralised RBAC96 baseline (Sandhu et al., ref [15]).

    The paper positions OASIS against "other RBAC schemes" with globally
    centralised administration of role naming and privilege management.
    This module is that comparator: a single administration point with
    user–role assignment (UA), permission–role assignment (PA), a role
    hierarchy, static separation of duty, and sessions (RBAC0–RBAC2).
    Every administrative mutation increments {!admin_ops}; experiment E6
    compares this churn against OASIS appointments and plain ACLs. *)

type t

type permission = { operation : string; target : string }

val create : unit -> t

(** {1 Administration (counted)} *)

val add_role : t -> string -> unit
(** Idempotent; counted only when it changes state (likewise below). *)

val add_inheritance : t -> senior:string -> junior:string -> unit
(** Seniors inherit juniors' permissions. Raises [Invalid_argument] on
    unknown roles or if the edge would create a cycle. *)

val add_user : t -> Oasis_util.Ident.t -> unit
val assign_user : t -> Oasis_util.Ident.t -> string -> unit
val deassign_user : t -> Oasis_util.Ident.t -> string -> unit
(** Deassignment also drops the role (and its dependants via hierarchy)
    from the user's live sessions — centralised revocation. *)

val grant_permission : t -> string -> permission -> unit
val revoke_permission : t -> string -> permission -> unit

val add_ssd : t -> string -> string -> unit
(** Static separation of duty: no user may be assigned both roles
    (ref [16]). Raises [Invalid_argument] if some user already holds both. *)

val admin_ops : t -> int

(** {1 Sessions} *)

type session

val create_session : t -> Oasis_util.Ident.t -> session

val activate_role : t -> session -> string -> (unit, string) result
(** Allowed when the user is assigned the role or a senior of it. *)

val drop_role : t -> session -> string -> unit

val active_roles : session -> string list

val check : t -> session -> permission -> bool
(** Permission flows up the hierarchy: an active senior role carries its
    juniors' permissions. *)

(** {1 Introspection} *)

val assigned_roles : t -> Oasis_util.Ident.t -> string list
val authorized_roles : t -> Oasis_util.Ident.t -> string list
(** Assigned roles plus everything junior to them. *)

val users_of_role : t -> string -> Oasis_util.Ident.t list
val role_count : t -> int
val user_count : t -> int
