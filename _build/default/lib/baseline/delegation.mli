(** Role delegation baseline (RBDM0 — Barka & Sandhu, refs [3, 4]).

    OASIS deliberately has no privilege delegation; appointment replaces it
    (Sect. 1–2). To quantify the difference, this module adds user-to-user
    delegation on top of {!Rbac96}: a role member may delegate membership to
    another user, delegatees may re-delegate up to a depth limit, and
    revocation is {e cascading} — revoking one delegation (or the original
    membership) tears down everything delegated through it.

    The measurable contrast (experiment E6): a delegation chain couples
    every delegatee's access to the delegator's continued membership, so
    revocations touch O(chain) state; OASIS appointments are independent
    credentials whose validity the issuing service controls one by one. *)

type t

val create : Rbac96.t -> max_depth:int -> t

val delegate :
  t -> from_user:Oasis_util.Ident.t -> to_user:Oasis_util.Ident.t -> role:string -> (unit, string) result
(** Fails if [from_user] is not a member (original or delegated) of [role],
    if the depth limit is reached, or if [to_user] already has the role. *)

val is_member : t -> Oasis_util.Ident.t -> string -> bool
(** Original assignment or live delegation. *)

val revoke :
  t -> from_user:Oasis_util.Ident.t -> to_user:Oasis_util.Ident.t -> role:string -> int
(** Cascading revocation; returns the number of delegations torn down
    (the blast radius). 0 if no such delegation. *)

val revoke_all_from : t -> Oasis_util.Ident.t -> string -> int
(** Everything this user delegated for the role, recursively — what must
    happen when the user loses the role themselves. *)

val delegation_count : t -> int
val chain_depth : t -> Oasis_util.Ident.t -> string -> int
(** 0 for an original member, k for a delegatee k hops from one; raises
    [Not_found] for a non-member. *)
