(** Plain access-control-list baseline.

    "RBAC ... provides a means of expressing access control which is
    scalable to large numbers of principals. The detailed management of
    large numbers of access control lists, as people change their employment
    or function, is avoided." (Sect. 1) This module is the strawman that
    claim measures against: per-object principal lists, so onboarding and
    offboarding a principal touches every object they may access. *)

type t

val create : unit -> t

val add_object : t -> string -> unit

val grant : t -> principal:Oasis_util.Ident.t -> obj:string -> operation:string -> unit
(** Counted when it changes state. Raises [Invalid_argument] on an unknown
    object. *)

val revoke : t -> principal:Oasis_util.Ident.t -> obj:string -> operation:string -> unit

val check : t -> principal:Oasis_util.Ident.t -> obj:string -> operation:string -> bool

val offboard : t -> Oasis_util.Ident.t -> int
(** Removes the principal from every ACL; returns (and counts) the entries
    touched — the churn RBAC avoids. *)

val admin_ops : t -> int
val object_count : t -> int
val entry_count : t -> int
