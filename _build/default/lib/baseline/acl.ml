module Ident = Oasis_util.Ident

module Entry_set = Set.Make (struct
  type t = Ident.t * string (* principal, operation *)

  let compare (p1, o1) (p2, o2) =
    let c = Ident.compare p1 p2 in
    if c <> 0 then c else String.compare o1 o2
end)

type t = { objects : (string, Entry_set.t ref) Hashtbl.t; mutable ops : int }

let create () = { objects = Hashtbl.create 256; ops = 0 }

let add_object t obj =
  if not (Hashtbl.mem t.objects obj) then begin
    Hashtbl.replace t.objects obj (ref Entry_set.empty);
    t.ops <- t.ops + 1
  end

let find t obj =
  match Hashtbl.find_opt t.objects obj with
  | Some acl -> acl
  | None -> invalid_arg (Printf.sprintf "Acl: unknown object %s" obj)

let grant t ~principal ~obj ~operation =
  let acl = find t obj in
  if not (Entry_set.mem (principal, operation) !acl) then begin
    acl := Entry_set.add (principal, operation) !acl;
    t.ops <- t.ops + 1
  end

let revoke t ~principal ~obj ~operation =
  let acl = find t obj in
  if Entry_set.mem (principal, operation) !acl then begin
    acl := Entry_set.remove (principal, operation) !acl;
    t.ops <- t.ops + 1
  end

let check t ~principal ~obj ~operation =
  match Hashtbl.find_opt t.objects obj with
  | Some acl -> Entry_set.mem (principal, operation) !acl
  | None -> false

let offboard t principal =
  let touched = ref 0 in
  Hashtbl.iter
    (fun _obj acl ->
      let before = Entry_set.cardinal !acl in
      acl := Entry_set.filter (fun (p, _) -> not (Ident.equal p principal)) !acl;
      let removed = before - Entry_set.cardinal !acl in
      touched := !touched + removed)
    t.objects;
  t.ops <- t.ops + !touched;
  !touched

let admin_ops t = t.ops

let object_count t = Hashtbl.length t.objects

let entry_count t =
  Hashtbl.fold (fun _ acl acc -> acc + Entry_set.cardinal !acl) t.objects 0
