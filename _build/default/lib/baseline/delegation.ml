module Ident = Oasis_util.Ident

type delegation = {
  from_user : Ident.t;
  to_user : Ident.t;
  role : string;
  depth : int; (* to_user's distance from an original member *)
}

type t = { rbac : Rbac96.t; max_depth : int; mutable delegations : delegation list }

let create rbac ~max_depth =
  if max_depth < 1 then invalid_arg "Delegation.create: max_depth must be >= 1";
  { rbac; max_depth; delegations = [] }

let delegated_to t user role =
  List.find_opt
    (fun d -> Ident.equal d.to_user user && String.equal d.role role)
    t.delegations

let original_member t user role = List.mem role (Rbac96.assigned_roles t.rbac user)

let is_member t user role = original_member t user role || delegated_to t user role <> None

let member_depth t user role =
  if original_member t user role then Some 0
  else match delegated_to t user role with Some d -> Some d.depth | None -> None

let delegate t ~from_user ~to_user ~role =
  match member_depth t from_user role with
  | None -> Error (Printf.sprintf "%s is not a member of %s" (Ident.to_string from_user) role)
  | Some depth when depth >= t.max_depth ->
      Error (Printf.sprintf "delegation depth limit %d reached" t.max_depth)
  | Some depth ->
      if is_member t to_user role then
        Error (Printf.sprintf "%s already holds %s" (Ident.to_string to_user) role)
      else begin
        t.delegations <- { from_user; to_user; role; depth = depth + 1 } :: t.delegations;
        Ok ()
      end

(* Removes the delegation edge from->to (if any) and, transitively,
   everything the delegatee passed on. *)
let rec cascade t ~from_user ~to_user ~role =
  let matches d =
    Ident.equal d.from_user from_user && Ident.equal d.to_user to_user && String.equal d.role role
  in
  if not (List.exists matches t.delegations) then 0
  else begin
    t.delegations <- List.filter (fun d -> not (matches d)) t.delegations;
    (* If the delegatee is not a member through some other path, their own
       onward delegations die too. *)
    if is_member t to_user role then 1
    else
      let onward =
        List.filter
          (fun d -> Ident.equal d.from_user to_user && String.equal d.role role)
          t.delegations
      in
      1
      + List.fold_left
          (fun acc d -> acc + cascade t ~from_user:d.from_user ~to_user:d.to_user ~role)
          0 onward
  end

let revoke t ~from_user ~to_user ~role = cascade t ~from_user ~to_user ~role

let revoke_all_from t user role =
  let mine =
    List.filter
      (fun d -> Ident.equal d.from_user user && String.equal d.role role)
      t.delegations
  in
  List.fold_left
    (fun acc d -> acc + cascade t ~from_user:d.from_user ~to_user:d.to_user ~role)
    0 mine

let delegation_count t = List.length t.delegations

let chain_depth t user role =
  match member_depth t user role with Some d -> d | None -> raise Not_found
