module Ident = Oasis_util.Ident

type permission = { operation : string; target : string }

module Perm_set = Set.Make (struct
  type t = permission

  let compare a b =
    let c = String.compare a.operation b.operation in
    if c <> 0 then c else String.compare a.target b.target
end)

module Str_set = Set.Make (String)

type session = {
  user : Ident.t;
  mutable active : Str_set.t;
  mutable closed : bool;
}

type t = {
  mutable roles : Str_set.t;
  (* senior -> juniors it directly inherits *)
  juniors : (string, Str_set.t) Hashtbl.t;
  ua : (string, Str_set.t) Hashtbl.t; (* user ident string -> roles *)
  pa : (string, Perm_set.t) Hashtbl.t; (* role -> permissions *)
  mutable ssd : (string * string) list;
  mutable users : Ident.Set.t;
  mutable sessions : session list;
  mutable ops : int;
}

let create () =
  {
    roles = Str_set.empty;
    juniors = Hashtbl.create 64;
    ua = Hashtbl.create 256;
    pa = Hashtbl.create 64;
    ssd = [];
    users = Ident.Set.empty;
    sessions = [];
    ops = 0;
  }

let counted t changed = if changed then t.ops <- t.ops + 1

let admin_ops t = t.ops

let require_role t role =
  if not (Str_set.mem role t.roles) then
    invalid_arg (Printf.sprintf "Rbac96: unknown role %s" role)

let add_role t role =
  let changed = not (Str_set.mem role t.roles) in
  t.roles <- Str_set.add role t.roles;
  counted t changed

(* Reflexive-transitive closure downward: the role itself plus everything
   junior to it. *)
let descendants t role =
  let rec go acc role =
    if Str_set.mem role acc then acc
    else
      let acc = Str_set.add role acc in
      match Hashtbl.find_opt t.juniors role with
      | None -> acc
      | Some juniors -> Str_set.fold (fun junior acc -> go acc junior) juniors acc
  in
  go Str_set.empty role

let add_inheritance t ~senior ~junior =
  require_role t senior;
  require_role t junior;
  if Str_set.mem senior (descendants t junior) then
    invalid_arg
      (Printf.sprintf "Rbac96.add_inheritance: %s -> %s would create a cycle" senior junior);
  let existing =
    match Hashtbl.find_opt t.juniors senior with Some s -> s | None -> Str_set.empty
  in
  let changed = not (Str_set.mem junior existing) in
  Hashtbl.replace t.juniors senior (Str_set.add junior existing);
  counted t changed

let add_user t user =
  let changed = not (Ident.Set.mem user t.users) in
  t.users <- Ident.Set.add user t.users;
  counted t changed

let key user = Ident.to_string user

let assigned t user =
  match Hashtbl.find_opt t.ua (key user) with Some s -> s | None -> Str_set.empty

let violates_ssd t user role =
  let would_have = Str_set.add role (assigned t user) in
  List.exists (fun (a, b) -> Str_set.mem a would_have && Str_set.mem b would_have) t.ssd

let assign_user t user role =
  require_role t role;
  if not (Ident.Set.mem user t.users) then
    invalid_arg (Printf.sprintf "Rbac96.assign_user: unknown user %s" (Ident.to_string user));
  if violates_ssd t user role then
    invalid_arg
      (Printf.sprintf "Rbac96.assign_user: %s for %s violates separation of duty" role
         (Ident.to_string user));
  let existing = assigned t user in
  let changed = not (Str_set.mem role existing) in
  Hashtbl.replace t.ua (key user) (Str_set.add role existing);
  counted t changed

let authorized_set t user =
  Str_set.fold (fun role acc -> Str_set.union acc (descendants t role)) (assigned t user)
    Str_set.empty

let deassign_user t user role =
  require_role t role;
  let existing = assigned t user in
  let changed = Str_set.mem role existing in
  Hashtbl.replace t.ua (key user) (Str_set.remove role existing);
  counted t changed;
  if changed then begin
    (* Central revocation reaches into live sessions immediately. *)
    let still_authorized = authorized_set t user in
    List.iter
      (fun session ->
        if Ident.equal session.user user then
          session.active <- Str_set.inter session.active still_authorized)
      t.sessions
  end

let perms_of t role =
  match Hashtbl.find_opt t.pa role with Some s -> s | None -> Perm_set.empty

let grant_permission t role permission =
  require_role t role;
  let existing = perms_of t role in
  let changed = not (Perm_set.mem permission existing) in
  Hashtbl.replace t.pa role (Perm_set.add permission existing);
  counted t changed

let revoke_permission t role permission =
  require_role t role;
  let existing = perms_of t role in
  let changed = Perm_set.mem permission existing in
  Hashtbl.replace t.pa role (Perm_set.remove permission existing);
  counted t changed

let add_ssd t a b =
  require_role t a;
  require_role t b;
  let offender =
    Ident.Set.filter
      (fun user ->
        let roles = assigned t user in
        Str_set.mem a roles && Str_set.mem b roles)
      t.users
  in
  (match Ident.Set.choose_opt offender with
  | Some user ->
      invalid_arg
        (Printf.sprintf "Rbac96.add_ssd: user %s already holds both %s and %s"
           (Ident.to_string user) a b)
  | None -> ());
  if not (List.mem (a, b) t.ssd || List.mem (b, a) t.ssd) then begin
    t.ssd <- (a, b) :: t.ssd;
    counted t true
  end

let create_session t user =
  let session = { user; active = Str_set.empty; closed = false } in
  t.sessions <- session :: t.sessions;
  session

let activate_role t session role =
  require_role t role;
  if session.closed then Error "session closed"
  else if Str_set.mem role (authorized_set t session.user) then begin
    session.active <- Str_set.add role session.active;
    Ok ()
  end
  else Error (Printf.sprintf "user not authorized for role %s" role)

let drop_role _t session role = session.active <- Str_set.remove role session.active

let active_roles session = Str_set.elements session.active

let check t session permission =
  (not session.closed)
  && Str_set.exists
       (fun role ->
         Str_set.exists
           (fun r -> Perm_set.mem permission (perms_of t r))
           (descendants t role))
       session.active

let assigned_roles t user = Str_set.elements (assigned t user)

let authorized_roles t user = Str_set.elements (authorized_set t user)

let users_of_role t role =
  Ident.Set.elements (Ident.Set.filter (fun user -> Str_set.mem role (assigned t user)) t.users)

let role_count t = Str_set.cardinal t.roles

let user_count t = Ident.Set.cardinal t.users
