(** Hybrid public-key encryption of message payloads.

    Sect. 4: "If any visibility of data and certificates 'on the wire' is
    unacceptable to an application — which must be assumed to be the case
    with cross-domain interworking — then encrypted communication must be
    used. Data sent to a service can be encrypted with the service's public
    key and the public key of the caller can be included for encrypting the
    reply."

    [seal] encrypts a payload to a recipient public key: an ElGamal KEM
    establishes a fresh shared secret, an HMAC-derived keystream encrypts
    the body, and an encrypt-then-MAC tag authenticates it. [reveal] returns
    [None] for wrong keys or any tampering. Same toy field size caveat as
    {!Elgamal} (DESIGN.md §3): genuine construction, demonstration
    parameters. *)

type t = {
  kem : Elgamal.ciphertext;  (** encapsulated key *)
  body : string;  (** payload under the derived keystream *)
  tag : Sha256.digest;  (** MAC over the body and encapsulation *)
}

val seal : Oasis_util.Rng.t -> Elgamal.public -> string -> t

val reveal : Elgamal.private_key -> t -> string option
(** [None] if the key is wrong or the ciphertext was modified. *)

val size_bytes : t -> int
(** Wire size: encapsulation + body + tag. *)
