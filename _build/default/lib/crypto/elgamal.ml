type public = int64
type private_key = int64

type keypair = { public : public; private_key : private_key }

let generate rng =
  let x = Modp.random rng in
  { public = Modp.pow Modp.generator x; private_key = x }

type ciphertext = { c1 : int64; c2 : int64 }

let encrypt rng pub m =
  let k = Modp.random rng in
  { c1 = Modp.pow Modp.generator k; c2 = Modp.mul (Modp.of_int64 m) (Modp.pow pub k) }

let decrypt x { c1; c2 } = Modp.mul c2 (Modp.inv (Modp.pow c1 x))

let public_to_string = Int64.to_string

let public_of_string s =
  match Int64.of_string_opt s with
  | Some v when v > 0L && v < Modp.p -> Some v
  | _ -> None

let proves x pub = Modp.pow Modp.generator x = pub
