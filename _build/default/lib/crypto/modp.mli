(** Arithmetic in GF(p) for the Mersenne prime p = 2^61 − 1.

    Provides the group underlying the simulated public-key operations
    (Diffie–Hellman / ElGamal in {!Elgamal}). A 61-bit field is far too small
    for real security; it is used here so that the challenge–response
    integration of Sect. 4.1 exercises genuine modular-exponentiation code
    paths without an arbitrary-precision dependency. DESIGN.md records the
    substitution. *)

val p : int64
(** 2305843009213693951 = 2^61 − 1 (prime). *)

val generator : int64
(** A fixed multiplicative generator used for key generation. *)

val add : int64 -> int64 -> int64
val sub : int64 -> int64 -> int64
val mul : int64 -> int64 -> int64
val pow : int64 -> int64 -> int64
(** [pow base e] with [e >= 0]. *)

val inv : int64 -> int64
(** Multiplicative inverse by Fermat; raises [Invalid_argument] on 0. *)

val of_int64 : int64 -> int64
(** Canonicalises an arbitrary int64 into [\[0, p)]. *)

val random : Oasis_util.Rng.t -> int64
(** Uniform in [\[1, p)]. *)
