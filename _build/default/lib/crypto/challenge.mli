(** ISO/9798-style challenge–response (Sect. 4.1).

    "The issuing service produces a random challenge, encrypted with the
    public key presented by the activator, and a nonce. The client must
    respond with the challenge in plaintext encrypted with the nonce. Upon
    receiving this, the service can conclude that the activator has access to
    the private key corresponding to the public key presented."

    The flow is split into explicit steps so that the simulated network can
    carry each message and tests can interpose an adversary at any point. *)

type challenge = {
  encrypted : Elgamal.ciphertext;  (** the random challenge, under the claimed public key *)
  nonce : string;  (** fresh symmetric key material for the response *)
}

type pending
(** Server-side state awaiting the response; single-use. *)

val issue : Oasis_util.Rng.t -> Elgamal.public -> challenge * pending
(** Server step: produce the challenge for a claimed public key. *)

val respond : Elgamal.private_key -> challenge -> string
(** Client step: decrypt the challenge and key the response with the nonce.
    A client holding the wrong private key produces a response that fails
    {!check}. *)

val check : pending -> string -> bool
(** Server step: verify the response. Each [pending] verifies at most once;
    replays of an already-checked exchange are rejected. *)
