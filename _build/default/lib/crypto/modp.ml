let p = 0x1FFFFFFFFFFFFFFFL (* 2^61 - 1 *)

let generator = 3L

(* Reduces x in [0, 2^63) modulo the Mersenne prime using 2^61 ≡ 1 (mod p). *)
let reduce x =
  let r = Int64.add (Int64.logand x p) (Int64.shift_right_logical x 61) in
  if r >= p then Int64.sub r p else r

let of_int64 x =
  let x = Int64.rem x p in
  if x < 0L then Int64.add x p else x

let add a b = reduce (Int64.add a b)

let sub a b = reduce (Int64.add a (Int64.sub p b))

(* Full 61x61 -> 122-bit product reduced mod p. Operands are split into
   31-bit halves so every intermediate fits in a signed int64:
     a*b = a1*b1*2^62 + (a1*b0 + a0*b1)*2^31 + a0*b0
   and 2^62 ≡ 2, mid*2^31 = m1*2^61 + m0*2^31 ≡ m1 + m0*2^31 (mod p). *)
let mul a b =
  let mask31 = 0x7FFFFFFFL in
  let a1 = Int64.shift_right_logical a 31 and a0 = Int64.logand a mask31 in
  let b1 = Int64.shift_right_logical b 31 and b0 = Int64.logand b mask31 in
  let hi = reduce (Int64.mul a1 b1) in
  (* a1*b1 < 2^60 *)
  let mid = Int64.add (Int64.mul a1 b0) (Int64.mul a0 b1) in
  (* < 2^62 *)
  let m1 = Int64.shift_right_logical mid 30 in
  let m0 = Int64.logand mid 0x3FFFFFFFL in
  (* mid*2^31 = m1*2^61 + m0*2^31 ≡ m1 + m0*2^31 *)
  let mid_red = reduce (Int64.add m1 (Int64.shift_left m0 31)) in
  let lo = reduce (Int64.mul a0 b0) in
  (* < 2^62 *)
  reduce (Int64.add (reduce (Int64.add (reduce (Int64.shift_left hi 1)) mid_red)) lo)

let pow base e =
  if e < 0L then invalid_arg "Modp.pow: negative exponent";
  let rec go acc base e =
    if e = 0L then acc
    else
      let acc = if Int64.logand e 1L = 1L then mul acc base else acc in
      go acc (mul base base) (Int64.shift_right_logical e 1)
  in
  go 1L (of_int64 base) e

let inv a =
  let a = of_int64 a in
  if a = 0L then invalid_arg "Modp.inv: zero has no inverse";
  pow a (Int64.sub p 2L)

let random rng =
  let rec draw () =
    let x = Int64.logand (Oasis_util.Rng.int64 rng) p in
    if x = 0L || x >= p then draw () else x
  in
  draw ()
