type t = { kem : Elgamal.ciphertext; body : string; tag : Sha256.digest }

(* Derives independent cipher and MAC keys from the KEM shared value and the
   encapsulation (binding the keys to this particular exchange). *)
let derive_keys shared (kem : Elgamal.ciphertext) =
  let seed =
    Printf.sprintf "sealed|%Ld|%Ld|%Ld" shared kem.Elgamal.c1 kem.Elgamal.c2
  in
  let base = Sha256.to_raw_string (Sha256.digest_string seed) in
  (Hmac.derive_key ~key:base "cipher", Hmac.derive_key ~key:base "mac")

(* HMAC keystream in 32-byte blocks, XORed over the payload. *)
let keystream_xor ~key payload =
  let n = String.length payload in
  let out = Bytes.create n in
  let block = ref 0 in
  let offset = ref 0 in
  while !offset < n do
    let ks = Sha256.to_raw_string (Hmac.mac ~key (Printf.sprintf "block:%d" !block)) in
    let take = min 32 (n - !offset) in
    for i = 0 to take - 1 do
      Bytes.set out (!offset + i)
        (Char.chr (Char.code payload.[!offset + i] lxor Char.code ks.[i]))
    done;
    offset := !offset + take;
    incr block
  done;
  Bytes.to_string out

let mac_input (kem : Elgamal.ciphertext) body =
  Printf.sprintf "%Ld|%Ld|%d|%s" kem.Elgamal.c1 kem.Elgamal.c2 (String.length body) body

let seal rng public payload =
  let shared = Modp.random rng in
  let kem = Elgamal.encrypt rng public shared in
  let cipher_key, mac_key = derive_keys shared kem in
  let body = keystream_xor ~key:cipher_key payload in
  { kem; body; tag = Hmac.mac ~key:mac_key (mac_input kem body) }

let reveal private_key t =
  let shared = Elgamal.decrypt private_key t.kem in
  let cipher_key, mac_key = derive_keys shared t.kem in
  if Hmac.verify ~key:mac_key (mac_input t.kem t.body) t.tag then
    Some (keystream_xor ~key:cipher_key t.body)
  else None

let size_bytes t = 16 + String.length t.body + 32
