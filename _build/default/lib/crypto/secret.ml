type t = string

let generate rng = Bytes.to_string (Oasis_util.Rng.bytes rng 32)

let of_string s = s

let to_key s = s

let rotate s ~epoch = Hmac.derive_key ~key:s (Printf.sprintf "epoch:%d" epoch)

let equal a b =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
  !acc = 0
