(** Service secrets.

    Each OASIS service holds a SECRET used as the key of the certificate
    signature function (Fig. 4). Secrets are abstract so they cannot leak
    into wire formats by accident; only {!to_key} exposes raw key material,
    for use by signing code. *)

type t

val generate : Oasis_util.Rng.t -> t
(** A fresh 32-byte secret. *)

val of_string : string -> t
(** Fixes a secret for deterministic tests. *)

val to_key : t -> string
(** Raw key material for the MAC; never embed this in messages. *)

val rotate : t -> epoch:int -> t
(** Derives the per-epoch secret; rotating the epoch invalidates previously
    issued signatures, modelling re-issue of long-lived appointment
    certificates "encrypted with a new server secret" (Sect. 4.1). *)

val equal : t -> t -> bool
(** Constant-time. *)
