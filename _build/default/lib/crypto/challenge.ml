type challenge = { encrypted : Elgamal.ciphertext; nonce : string }

type pending = { expected : string; mutable used : bool }

let response_of ~nonce plain =
  Sha256.to_raw_string (Hmac.mac ~key:nonce (Int64.to_string plain))

let issue rng pub =
  let plain = Modp.random rng in
  let nonce = Bytes.to_string (Oasis_util.Rng.bytes rng 16) in
  let encrypted = Elgamal.encrypt rng pub plain in
  ({ encrypted; nonce }, { expected = response_of ~nonce plain; used = false })

let respond priv { encrypted; nonce } =
  response_of ~nonce (Elgamal.decrypt priv encrypted)

let check pending response =
  if pending.used then false
  else begin
    pending.used <- true;
    String.length response = String.length pending.expected
    &&
    let acc = ref 0 in
    String.iteri
      (fun i c -> acc := !acc lor (Char.code c lxor Char.code pending.expected.[i]))
      response;
    !acc = 0
  end
