lib/crypto/secret.ml: Bytes Char Hmac Oasis_util Printf String
