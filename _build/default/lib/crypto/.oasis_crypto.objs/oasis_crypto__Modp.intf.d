lib/crypto/modp.mli: Oasis_util
