lib/crypto/elgamal.mli: Oasis_util
