lib/crypto/sealed.ml: Bytes Char Elgamal Hmac Modp Printf Sha256 String
