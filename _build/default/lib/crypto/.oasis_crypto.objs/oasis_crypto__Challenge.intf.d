lib/crypto/challenge.mli: Elgamal Oasis_util
