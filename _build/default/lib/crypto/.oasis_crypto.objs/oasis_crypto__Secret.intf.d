lib/crypto/secret.mli: Oasis_util
