lib/crypto/modp.ml: Int64 Oasis_util
