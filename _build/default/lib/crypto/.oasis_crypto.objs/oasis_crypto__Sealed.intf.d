lib/crypto/sealed.mli: Elgamal Oasis_util Sha256
