lib/crypto/challenge.ml: Bytes Char Elgamal Hmac Int64 Modp Oasis_util Sha256 String
