lib/crypto/elgamal.ml: Int64 Modp
