(** Anonymous service use (Sect. 5, "Anonymity").

    The paper's scenario: a medical-insurance member may take genetic tests
    anonymously. The insurance company's CIV issues a membership card — an
    appointment certificate carrying the scheme name and expiry but {e no
    personal details} — bound to a pseudonym key created by the member. The
    clinic's activation rule accepts the certificate (validated by callback
    to the issuing CIV, a trusted third party) plus an environmental
    constraint that the test date precedes the expiry; the clinic never
    learns who the member is, and the insurer never learns a test took
    place. *)

type membership = {
  certificate : Oasis_cert.Appointment.t;
  alias : Oasis_util.Ident.t;  (** pseudonymous principal id to present *)
  expires_at : float;
}

val enroll :
  civ:Civ.t -> member:Oasis_core.Principal.t -> scheme:string -> expires_at:float -> membership
(** Issues the anonymous membership certificate: kind [scheme], args
    [[Time expires_at]], holder a fresh pseudonym key of [member]. The
    certificate lands in the member's wallet. *)

val member_role_rule : scheme:string -> civ_name:string -> role:string -> Oasis_policy.Rule.activation
(** The clinic-side activation rule:
    [initial role(exp) <- *appt:scheme(exp)@civ, env:before(exp)]. *)

val activate_anonymously :
  Oasis_core.Principal.t ->
  Oasis_core.Principal.session ->
  Oasis_core.Service.t ->
  role:string ->
  membership ->
  (Oasis_cert.Rmc.t, Oasis_core.Protocol.denial) result
(** Activates [role] at the clinic under the membership's alias, presenting
    only the membership certificate (not the rest of the wallet, which could
    deanonymise). Must run inside a simulated process. *)
