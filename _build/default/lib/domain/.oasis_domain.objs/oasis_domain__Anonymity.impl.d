lib/domain/anonymity.ml: Civ Oasis_cert Oasis_core Oasis_policy Oasis_util
