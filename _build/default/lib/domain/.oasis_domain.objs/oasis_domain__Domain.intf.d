lib/domain/domain.mli: Civ Oasis_core Oasis_policy
