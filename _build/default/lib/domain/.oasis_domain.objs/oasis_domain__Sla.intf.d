lib/domain/sla.mli: Format Oasis_core Oasis_policy
