lib/domain/anonymity.mli: Civ Oasis_cert Oasis_core Oasis_policy Oasis_util
