lib/domain/civ.mli: Oasis_cert Oasis_core Oasis_trust Oasis_util
