lib/domain/domain.ml: Civ List Oasis_core Oasis_policy Oasis_sim
