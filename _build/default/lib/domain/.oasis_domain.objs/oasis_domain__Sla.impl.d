lib/domain/sla.ml: Format List Oasis_core Oasis_policy Printf String
