lib/domain/civ.ml: Array Oasis_cert Oasis_core Oasis_crypto Oasis_event Oasis_sim Oasis_trust Oasis_util Printf
