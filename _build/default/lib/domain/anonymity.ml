module Value = Oasis_util.Value
module Term = Oasis_policy.Term
module Rule = Oasis_policy.Rule
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol

type membership = {
  certificate : Oasis_cert.Appointment.t;
  alias : Oasis_util.Ident.t;
  expires_at : float;
}

let enroll ~civ ~member ~scheme ~expires_at =
  let alias, pseudonym_key = Principal.fresh_pseudonym member in
  let certificate =
    Civ.issue civ ~kind:scheme
      ~args:[ Value.Time expires_at ]
      ~holder:alias ~holder_key:pseudonym_key ~expires_at ()
  in
  Principal.grant_appointment member certificate;
  { certificate; alias; expires_at }

let member_role_rule ~scheme ~civ_name ~role =
  Rule.activation ~initial:true ~role
    ~params:[ Term.Var "exp" ]
    [
      (true, Rule.Appointment { service = Some civ_name; name = scheme; args = [ Term.Var "exp" ] });
      (false, Rule.Constraint ("before", [ Term.Var "exp" ]));
    ]

let activate_anonymously principal session clinic ~role membership =
  Principal.activate_with principal session clinic ~role ~alias:membership.alias
    ~creds:{ Protocol.rmcs = []; appointments = [ membership.certificate ] }
    ()
