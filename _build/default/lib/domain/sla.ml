module Rule = Oasis_policy.Rule
module World = Oasis_core.World
module Service = Oasis_core.Service

type clause =
  | Accept_appointment of {
      at : string;
      role : string;
      params : Oasis_policy.Term.t list;
      kind : string;
      cert_args : Oasis_policy.Term.t list;
      issuer : string;
      monitored : bool;
      extra : (bool * Rule.condition) list;
      initial : bool;
    }
  | Accept_role of {
      at : string;
      role : string;
      params : Oasis_policy.Term.t list;
      foreign_role : string;
      role_args : Oasis_policy.Term.t list;
      issuer : string;
      monitored : bool;
      extra : (bool * Rule.condition) list;
    }

type t = {
  sname : string;
  parties : string * string;
  established_at : float;
  clauses : clause list;
  rules : (string * Rule.activation) list;
}

let rule_of_clause = function
  | Accept_appointment { role; params; kind; cert_args; issuer; monitored; extra; initial; _ } ->
      Rule.activation ~initial ~role ~params
        ((monitored, Rule.Appointment { service = Some issuer; name = kind; args = cert_args })
        :: extra)
  | Accept_role { role; params; foreign_role; role_args; issuer; monitored; extra; _ } ->
      Rule.activation ~role ~params
        ((monitored, Rule.Prereq { service = Some issuer; name = foreign_role; args = role_args })
        :: extra)

let clause_host = function Accept_appointment { at; _ } | Accept_role { at; _ } -> at

let establish world ~name ~between ~and_ ~clauses =
  let party_a = Service.service_name between in
  let party_b = Service.service_name and_ in
  let host_of clause =
    let at = clause_host clause in
    if String.equal at party_a then between
    else if String.equal at party_b then and_
    else
      invalid_arg
        (Printf.sprintf "Sla.establish: clause names %s, which is not a party to %s" at name)
  in
  let rules =
    List.map
      (fun clause ->
        let host = host_of clause in
        let rule = rule_of_clause clause in
        Service.add_activation_rule host rule;
        (Service.service_name host, rule))
      clauses
  in
  {
    sname = name;
    parties = (party_a, party_b);
    established_at = World.now world;
    clauses;
    rules;
  }

let name t = t.sname
let parties t = t.parties
let established_at t = t.established_at
let clauses t = t.clauses
let rules_installed t = t.rules

let pp ppf t =
  let a, b = t.parties in
  Format.fprintf ppf "@[<v>SLA %S between %s and %s (t=%g):@,%a@]" t.sname a b t.established_at
    (Format.pp_print_list (fun ppf (host, rule) ->
         Format.fprintf ppf "  at %s: %a" host Rule.pp_activation rule))
    t.rules
