module Env = Oasis_policy.Env
module World = Oasis_core.World
module Service = Oasis_core.Service
module Engine = Oasis_sim.Engine

type t = {
  dname : string;
  world : World.t;
  denv : Env.t;
  civ : Civ.t;
  mutable services : (string * Service.t) list;
}

let qualified_name dname n = dname ^ "." ^ n

let create world ~name ?civ_replicas () =
  let civ = Civ.create world ~name:(qualified_name name "civ") ?replicas:civ_replicas () in
  {
    dname = name;
    world;
    denv = Env.create (Engine.clock (World.engine world));
    civ;
    services = [];
  }

let name t = t.dname
let world t = t.world
let civ t = t.civ
let env t = t.denv

let add_service t ~name ?config ~policy () =
  let service =
    Service.create t.world ~name:(qualified_name t.dname name) ?config ~env:t.denv ~policy ()
  in
  t.services <- (name, service) :: t.services;
  service

let services t = List.map snd t.services

let find_service t short = List.assoc_opt short t.services

let qualified t n = qualified_name t.dname n
