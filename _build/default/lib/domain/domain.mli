(** Administrative domains (Sect. 1, 3).

    "Distributed systems contain many domains; for example the healthcare
    domain comprises subdomains of public and private hospitals, primary
    care practices, research institutes, clinics ... as well as national
    services such as electronic health record management."

    A domain groups services that share an environment database (the
    intra-domain "database lookup at some service" of Sect. 2) and a CIV
    cluster that issues and validates the domain's appointment
    certificates. *)

type t

val create : Oasis_core.World.t -> name:string -> ?civ_replicas:int -> unit -> t
(** Creates the domain with its CIV cluster registered as ["<name>.civ"]. *)

val name : t -> string
val world : t -> Oasis_core.World.t
val civ : t -> Civ.t

val env : t -> Oasis_policy.Env.t
(** The domain's shared environment database. *)

val add_service :
  t ->
  name:string ->
  ?config:Oasis_core.Service.config ->
  policy:string ->
  unit ->
  Oasis_core.Service.t
(** Creates a service inside the domain: it shares the domain environment
    and registers under ["<domain>.<name>"]. Policy rules within the domain
    can therefore reference siblings as [@<domain>.<sibling>] and the CIV
    as [@<domain>.civ]. *)

val services : t -> Oasis_core.Service.t list

val find_service : t -> string -> Oasis_core.Service.t option
(** Lookup by the short (unqualified) name. *)

val qualified : t -> string -> string
(** [qualified t n] is ["<domain>.<n>"] — the name as seen in the world
    registry and in cross-domain policy. *)
