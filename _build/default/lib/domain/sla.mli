(** Service-level agreements (Sect. 3, 5).

    "Widely distributed services may establish agreements on the use of one
    another's appointment certificates ... The doctor can enter the role
    visiting doctor in the research institute through an activation rule
    which recognises the home domain appointment certificate as a
    precondition; this activation rule is part of the policy established by
    the service level agreement between the hospital and the research
    institute."

    An SLA is therefore realised as activation/authorization rules installed
    at the party services, referencing the other party's roles and
    appointment certificates; validation happens by callback to the issuer
    as usual. This module installs such rules and keeps the agreement as a
    first-class record (parties, date, clauses) for inspection. *)

type t

type clause =
  | Accept_appointment of {
      at : string;  (** installing service's registered name *)
      role : string;  (** local role the foreign credential admits *)
      params : Oasis_policy.Term.t list;
      kind : string;  (** foreign appointment kind *)
      cert_args : Oasis_policy.Term.t list;
      issuer : string;  (** registered name of the foreign issuer (e.g. a CIV) *)
      monitored : bool;  (** membership-monitor the foreign credential *)
      extra : (bool * Oasis_policy.Rule.condition) list;
          (** additional conditions, e.g. environmental constraints *)
      initial : bool;
    }
  | Accept_role of {
      at : string;
      role : string;
      params : Oasis_policy.Term.t list;
      foreign_role : string;
      role_args : Oasis_policy.Term.t list;
      issuer : string;
      monitored : bool;
      extra : (bool * Oasis_policy.Rule.condition) list;
    }
      (** Accept the other party's RMC as prerequisite — the Fig. 3 pattern
          where the national EHR service recognises hospital RMCs. *)

val establish :
  Oasis_core.World.t ->
  name:string ->
  between:Oasis_core.Service.t ->
  and_:Oasis_core.Service.t ->
  clauses:clause list ->
  t
(** Installs every clause's activation rule at the named party service and
    records the agreement. Raises [Invalid_argument] if a clause names a
    service that is neither party. *)

val name : t -> string
val parties : t -> string * string
val established_at : t -> float
val clauses : t -> clause list
val rules_installed : t -> (string * Oasis_policy.Rule.activation) list

val pp : Format.formatter -> t -> unit
