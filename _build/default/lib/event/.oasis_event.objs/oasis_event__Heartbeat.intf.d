lib/event/heartbeat.mli: Broker Oasis_sim
