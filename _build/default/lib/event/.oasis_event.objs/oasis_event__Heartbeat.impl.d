lib/event/heartbeat.ml: Broker Float Oasis_sim Oasis_util
