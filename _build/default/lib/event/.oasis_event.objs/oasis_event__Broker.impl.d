lib/event/broker.ml: Hashtbl List Oasis_sim Oasis_util
