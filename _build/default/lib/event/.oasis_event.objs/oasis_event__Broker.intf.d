lib/event/broker.mli: Oasis_sim Oasis_util
