module Engine = Oasis_sim.Engine
module Rng = Oasis_util.Rng
module Ident = Oasis_util.Ident

type topic = string

type 'a sub = {
  id : int;
  sub_topic : topic;
  owner : Ident.t;
  callback : topic -> 'a -> unit;
  mutable active : bool;
}

type subscription = { unsub : unit -> unit }

type stats = { published : int; notified : int }

type 'a t = {
  engine : Engine.t;
  rng : Rng.t;
  latency : float;
  jitter : float;
  subs : (topic, 'a sub list ref) Hashtbl.t;
  mutable next_id : int;
  mutable published : int;
  mutable notified : int;
}

let create engine rng ~notify_latency ?(jitter = 0.0) () =
  {
    engine;
    rng;
    latency = notify_latency;
    jitter;
    subs = Hashtbl.create 64;
    next_id = 0;
    published = 0;
    notified = 0;
  }

let bucket t topic =
  match Hashtbl.find_opt t.subs topic with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace t.subs topic b;
      b

let subscribe t topic ~owner callback =
  let sub = { id = t.next_id; sub_topic = topic; owner; callback; active = true } in
  t.next_id <- t.next_id + 1;
  let b = bucket t topic in
  b := sub :: !b;
  {
    unsub =
      (fun () ->
        sub.active <- false;
        b := List.filter (fun s -> s.id <> sub.id) !b);
  }

let unsubscribe _t subscription = subscription.unsub ()

let delay t = t.latency +. (if t.jitter > 0.0 then Rng.float t.rng t.jitter else 0.0)

let publish t topic payload =
  t.published <- t.published + 1;
  match Hashtbl.find_opt t.subs topic with
  | None -> ()
  | Some b ->
      (* Snapshot in subscription order; a subscriber added after this
         publish must not see it. *)
      let snapshot = List.rev !b in
      List.iter
        (fun sub ->
          ignore
            (Engine.schedule t.engine ~after:(delay t) (fun () ->
                 if sub.active then begin
                   t.notified <- t.notified + 1;
                   sub.callback sub.sub_topic payload
                 end)))
        snapshot

let subscriber_count t topic =
  match Hashtbl.find_opt t.subs topic with None -> 0 | Some b -> List.length !b

let stats t = { published = t.published; notified = t.notified }

let reset_stats t =
  t.published <- 0;
  t.notified <- 0
