lib/core/principal.ml: List Oasis_cert Oasis_crypto Oasis_sim Oasis_util Protocol Service String World
