lib/core/world.mli: Oasis_event Oasis_sim Oasis_util Protocol
