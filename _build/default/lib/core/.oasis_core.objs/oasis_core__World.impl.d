lib/core/world.ml: Hashtbl Oasis_event Oasis_sim Oasis_util Option Printf Protocol
