lib/core/service.mli: Oasis_cert Oasis_policy Oasis_util World
