lib/core/principal.mli: Oasis_cert Oasis_util Protocol Service World
