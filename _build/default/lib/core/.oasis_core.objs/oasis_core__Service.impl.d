lib/core/service.ml: Hashtbl List Logs Oasis_cert Oasis_crypto Oasis_event Oasis_policy Oasis_sim Oasis_util Printf Protocol String World
