lib/core/protocol.ml: Format Fun List Oasis_cert Oasis_crypto Oasis_util Option Printf String
