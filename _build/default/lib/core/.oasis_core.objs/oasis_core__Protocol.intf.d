lib/core/protocol.mli: Format Oasis_cert Oasis_crypto Oasis_util
