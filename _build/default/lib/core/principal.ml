module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Network = Oasis_sim.Network
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Elgamal = Oasis_crypto.Elgamal
module Challenge = Oasis_crypto.Challenge

type session = {
  keys : Elgamal.keypair;
  mutable rmcs : (Rmc.t * bool) list; (* certificate, is-initial *)
  mutable open_ : bool;
}

type t = {
  pid : Ident.t;
  pname : string;
  world : World.t;
  longterm : Elgamal.keypair;
  mutable wallet : Appointment.t list;
  mutable sessions : session list;
  mutable pseudonyms : Elgamal.keypair list;
}

let id t = t.pid
let name t = t.pname

let longterm_public t = Elgamal.public_to_string t.longterm.Elgamal.public

let answer_challenge t (challenge : Challenge.challenge) ~key_hint =
  let keys =
    (t.longterm :: List.map (fun s -> s.keys) t.sessions) @ t.pseudonyms
  in
  match
    List.find_opt (fun kp -> String.equal (Elgamal.public_to_string kp.Elgamal.public) key_hint) keys
  with
  | Some kp -> Challenge.respond kp.Elgamal.private_key challenge
  | None -> ""

let create world ~name =
  let pid = World.fresh_principal_id world in
  let t =
    {
      pid;
      pname = name;
      world;
      longterm = Elgamal.generate (World.rng world);
      wallet = [];
      sessions = [];
      pseudonyms = [];
    }
  in
  Network.add_node (World.network world) pid
    {
      on_oneway = (fun ~src:_ _msg -> ());
      on_rpc =
        (fun ~src:_ msg ->
          match msg with
          | Protocol.Challenge_msg { challenge; key_hint } ->
              Protocol.Challenge_response (answer_challenge t challenge ~key_hint)
          | _ -> Protocol.Denied (Protocol.Bad_request "principals only answer challenges"));
    };
  t

let fresh_pseudonym t =
  let keys = Elgamal.generate (World.rng t.world) in
  t.pseudonyms <- keys :: t.pseudonyms;
  (World.fresh_anon_id t.world, Elgamal.public_to_string keys.Elgamal.public)

let grant_appointment t appt = t.wallet <- appt :: t.wallet

let appointments t = t.wallet

let drop_appointment t cert_id =
  t.wallet <- List.filter (fun (a : Appointment.t) -> not (Ident.equal a.id cert_id)) t.wallet

let start_session t =
  let session = { keys = Elgamal.generate (World.rng t.world); rmcs = []; open_ = true } in
  t.sessions <- session :: t.sessions;
  session

let session_key session = Elgamal.public_to_string session.keys.Elgamal.public

let session_rmcs session = List.map fst session.rmcs

let initial_rmcs session = List.filter_map (fun (rmc, initial) -> if initial then Some rmc else None) session.rmcs

let credentials t session =
  { Protocol.rmcs = session_rmcs session; appointments = t.wallet }

let call t service msg =
  match
    Network.rpc (World.network t.world) ~src:t.pid ~dst:(Service.id service) msg
  with
  | reply -> reply
  | exception Network.Rpc_dropped -> Protocol.Denied (Protocol.Bad_request "network failure")

let activate_with t session service ~role ?(args = []) ?alias ~creds () =
  let principal = match alias with Some a -> a | None -> t.pid in
  match
    call t service
      (Protocol.Activate
         { principal; session_key = session_key session; role; requested = args; creds })
  with
  | Protocol.Activate_ok { rmc; initial } ->
      session.rmcs <- (rmc, initial) :: session.rmcs;
      Ok rmc
  | Protocol.Denied denial -> Error denial
  | _ -> Error (Protocol.Bad_request "unexpected reply")

let activate t session service ~role ?(args = []) ?alias () =
  activate_with t session service ~role ~args ?alias ~creds:(credentials t session) ()

let invoke_with t session service ~privilege ~args ?alias ~creds () =
  let principal = match alias with Some a -> a | None -> t.pid in
  match
    call t service
      (Protocol.Invoke
         { principal; session_key = session_key session; privilege; args; creds })
  with
  | Protocol.Invoke_ok result -> Ok result
  | Protocol.Denied denial -> Error denial
  | _ -> Error (Protocol.Bad_request "unexpected reply")

let invoke t session service ~privilege ~args =
  invoke_with t session service ~privilege ~args ~creds:(credentials t session) ()

let invoke_as t session service ~privilege ~args ~alias =
  invoke_with t session service ~privilege ~args ~alias ~creds:(credentials t session) ()

let appoint t session service ~kind ~args ~holder ?holder_key ?expires_at () =
  match
    call t service
      (Protocol.Appoint
         {
           principal = t.pid;
           session_key = session_key session;
           kind;
           args;
           holder = holder.pid;
           holder_key = (match holder_key with Some k -> k | None -> longterm_public holder);
           expires_at;
           creds = credentials t session;
         })
  with
  | Protocol.Appoint_ok appt ->
      grant_appointment holder appt;
      Ok appt
  | Protocol.Denied denial -> Error denial
  | _ -> Error (Protocol.Bad_request "unexpected reply")

let deactivate t session (rmc : Rmc.t) =
  let reply =
    match
      Network.rpc (World.network t.world) ~src:t.pid ~dst:rmc.issuer
        (Protocol.Deactivate { cert_id = rmc.id; session_key = session_key session })
    with
    | reply -> reply
    | exception Network.Rpc_dropped -> Protocol.Denied (Protocol.Bad_request "network failure")
  in
  match reply with
  | Protocol.Deactivate_ok ->
      session.rmcs <- List.filter (fun (r, _) -> not (Ident.equal r.Rmc.id rmc.Rmc.id)) session.rmcs;
      true
  | _ -> false

let logout t session =
  List.iter (fun rmc -> ignore (deactivate t session rmc)) (initial_rmcs session);
  session.rmcs <- [];
  session.open_ <- false;
  t.sessions <- List.filter (fun s -> s != session) t.sessions
