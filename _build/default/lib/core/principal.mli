(** Principals: the users (and client-acting services) of OASIS.

    A principal owns a long-lived key pair (the persistent id bound into
    appointment certificates), a wallet of appointment certificates, and any
    number of {e sessions}. Each session has its own session key pair — the
    session-specific principal id that Sect. 4.1 recommends over persistent
    ids — and accumulates the RMCs granted within it.

    Client operations ({!activate}, {!invoke}, {!appoint}, …) are blocking
    round trips and must run inside a simulated process
    ({!World.run_proc} / {!World.spawn}). The principal's network node
    answers challenge–response probes for any of its keys automatically. *)

type t

type session

val create : World.t -> name:string -> t

val id : t -> Oasis_util.Ident.t
val name : t -> string

val longterm_public : t -> string
(** The persistent principal id: holder binding for appointment
    certificates. *)

(** {1 Appointment wallet} *)

val grant_appointment : t -> Oasis_cert.Appointment.t -> unit
(** Hands the principal a certificate (the out-of-band delivery of a
    membership card, diploma, …). No check is made here that the holder
    binding matches — a thief can pocket a stolen certificate; services are
    the ones who must detect it. *)

val appointments : t -> Oasis_cert.Appointment.t list

val drop_appointment : t -> Oasis_util.Ident.t -> unit

val fresh_pseudonym : t -> Oasis_util.Ident.t * string
(** A pseudonymous alias and a fresh public key the principal can answer
    challenges for. Supports the anonymous-invocation scenario of Sect. 5:
    an appointment certificate bound to the pseudonym key, presented under
    the alias, authorises service use without identifying the member. *)

(** {1 Sessions} *)

val start_session : t -> session
(** Fresh session key pair, empty RMC wallet. *)

val session_key : session -> string
(** The session public key as bound into RMCs. *)

val session_rmcs : session -> Oasis_cert.Rmc.t list
val initial_rmcs : session -> Oasis_cert.Rmc.t list
(** RMCs of initial (session-root) roles. *)

(** {1 Client operations — call inside a simulated process} *)

val activate :
  t ->
  session ->
  Service.t ->
  role:string ->
  ?args:Oasis_util.Value.t option list ->
  ?alias:Oasis_util.Ident.t ->
  unit ->
  (Oasis_cert.Rmc.t, Protocol.denial) result
(** Role entry (paths 1–2 of Fig. 2). Presents the session's RMCs plus the
    appointment wallet; on success the new RMC joins the session wallet.
    [args] positionally pins requested head parameters. *)

val invoke :
  t ->
  session ->
  Service.t ->
  privilege:string ->
  args:Oasis_util.Value.t list ->
  (Oasis_util.Value.t option, Protocol.denial) result
(** Service use (paths 3–4 of Fig. 2). *)

val invoke_as :
  t ->
  session ->
  Service.t ->
  privilege:string ->
  args:Oasis_util.Value.t list ->
  alias:Oasis_util.Ident.t ->
  (Oasis_util.Value.t option, Protocol.denial) result
(** Invocation under a pseudonymous alias: the service's audit trail records
    the alias, not the principal. *)

val appoint :
  t ->
  session ->
  Service.t ->
  kind:string ->
  args:Oasis_util.Value.t list ->
  holder:t ->
  ?holder_key:string ->
  ?expires_at:float ->
  unit ->
  (Oasis_cert.Appointment.t, Protocol.denial) result
(** Issues an appointment certificate to [holder] (who receives it into
    their wallet), provided this principal's credentials satisfy the
    service's appointer policy for [kind]. *)

val deactivate : t -> session -> Oasis_cert.Rmc.t -> bool
(** Voluntarily drops one role; dependent roles collapse via the event
    infrastructure. *)

val logout : t -> session -> unit
(** Deactivates the session's initial roles — "if a single initial role is
    deactivated ... all the active roles dependent on it collapse and that
    session terminates" (Sect. 4) — and closes the session locally. *)

(** {1 Adversarial/test entry points} *)

val activate_with :
  t ->
  session ->
  Service.t ->
  role:string ->
  ?args:Oasis_util.Value.t option list ->
  ?alias:Oasis_util.Ident.t ->
  creds:Protocol.credentials ->
  unit ->
  (Oasis_cert.Rmc.t, Protocol.denial) result
(** Like {!activate} but presenting an arbitrary credential set — e.g.
    certificates stolen from another principal. The request is still bound
    to {e this} session's key. *)

val invoke_with :
  t ->
  session ->
  Service.t ->
  privilege:string ->
  args:Oasis_util.Value.t list ->
  ?alias:Oasis_util.Ident.t ->
  creds:Protocol.credentials ->
  unit ->
  (Oasis_util.Value.t option, Protocol.denial) result
