module Ident = Oasis_util.Ident
module Wire = Oasis_cert.Wire
module Hmac = Oasis_crypto.Hmac
module Secret = Oasis_crypto.Secret
module Sha256 = Oasis_crypto.Sha256

type outcome = Fulfilled | Breached

let pp_outcome ppf = function
  | Fulfilled -> Format.pp_print_string ppf "fulfilled"
  | Breached -> Format.pp_print_string ppf "breached"

type t = {
  id : Ident.t;
  registrar : Ident.t;
  client : Ident.t;
  server : Ident.t;
  at : float;
  client_outcome : outcome;
  server_outcome : outcome;
  signature : Sha256.digest;
}

let outcome_tag = function Fulfilled -> 1 | Breached -> 0

let fields t =
  [
    Wire.Fident t.id;
    Wire.Fident t.registrar;
    Wire.Fident t.client;
    Wire.Fident t.server;
    Wire.Ffloat t.at;
    Wire.Fint (outcome_tag t.client_outcome);
    Wire.Fint (outcome_tag t.server_outcome);
  ]

let sign ~secret t = Hmac.mac ~key:(Secret.to_key secret) (Wire.encode "audit" (fields t))

let issue ~secret ~id ~registrar ~client ~server ~at ~client_outcome ~server_outcome =
  let unsigned =
    {
      id;
      registrar;
      client;
      server;
      at;
      client_outcome;
      server_outcome;
      signature = Sha256.digest_string "";
    }
  in
  { unsigned with signature = sign ~secret unsigned }

let verify ~secret t = Sha256.equal t.signature (sign ~secret t)

let outcome_for t party =
  if Ident.equal t.client party then Some t.client_outcome
  else if Ident.equal t.server party then Some t.server_outcome
  else None

let involves t party = Ident.equal t.client party || Ident.equal t.server party

let with_server_outcome t server_outcome = { t with server_outcome }

let pp ppf t =
  Format.fprintf ppf "AUDIT[%a %a->%a client=%a server=%a by %a]" Ident.pp t.id Ident.pp t.client
    Ident.pp t.server pp_outcome t.client_outcome pp_outcome t.server_outcome Ident.pp t.registrar
