(** Population experiments for the web-of-trust speculation (Sect. 6).

    "What is needed is an approach which will allow a trust infrastructure
    to evolve despite Byzantine behaviour by a minority of the principals."

    The simulation populates a marketplace of server agents (honest,
    Byzantine, or colluding) and client agents that consult presented audit
    histories before proceeding. Colluders pad their histories with
    certificates fabricated by a rogue registrar (the paper's "client and
    service might collude to build up a false history"). Experiment E8
    sweeps the Byzantine fraction and toggles registrar discounting, and
    reports per-round decision accuracy. *)

type server_kind =
  | Honest  (** always fulfils *)
  | Byzantine of float  (** breaches with this probability *)
  | Colluder of int  (** breaches always; pads this many fabricated certificates per round *)

val pp_server_kind : Format.formatter -> server_kind -> unit

type params = {
  servers : int;
  clients : int;
  byzantine_fraction : float;
  byzantine_breach_probability : float;
  colluder_fraction : float;
  colluder_padding : int;  (** fabricated certificates per colluder per round *)
  rounds : int;
  interactions_per_round : int;
  threshold : float;
  discounting : bool;
  favourable_presentation : bool;
      (** servers withhold unfavourable certificates (strategic presentation) *)
  seed : int;
}

val default_params : params

type round_stats = {
  round : int;
  proceeded_with_good : int;  (** correct accepts *)
  proceeded_with_bad : int;  (** the costly mistake *)
  refused_good : int;  (** lost business *)
  refused_bad : int;  (** correct refusals *)
  accuracy : float;  (** correct decisions / decisions *)
  mean_rogue_weight : float;  (** mean credibility of the rogue registrar across clients *)
}

type result = {
  params : params;
  per_round : round_stats list;
  final_accuracy : float;  (** mean accuracy over the last quarter of rounds *)
}

val run : params -> result
(** Deterministic for a given [params] (including seed). *)
