lib/trust/audit.ml: Format Oasis_cert Oasis_crypto Oasis_util
