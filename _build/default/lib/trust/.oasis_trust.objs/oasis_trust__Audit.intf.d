lib/trust/audit.mli: Format Oasis_crypto Oasis_util
