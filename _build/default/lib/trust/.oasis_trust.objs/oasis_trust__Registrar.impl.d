lib/trust/registrar.ml: Audit Oasis_crypto Oasis_util
