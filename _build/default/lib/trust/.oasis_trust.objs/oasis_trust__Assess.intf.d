lib/trust/assess.mli: Audit Oasis_util
