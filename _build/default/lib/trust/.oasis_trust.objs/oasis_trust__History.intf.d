lib/trust/history.mli: Audit Oasis_util
