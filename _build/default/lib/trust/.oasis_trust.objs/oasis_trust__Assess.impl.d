lib/trust/assess.ml: Audit Float List Oasis_util
