lib/trust/registrar.mli: Audit Oasis_util
