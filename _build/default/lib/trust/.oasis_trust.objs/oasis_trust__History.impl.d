lib/trust/history.ml: Audit List Oasis_util
