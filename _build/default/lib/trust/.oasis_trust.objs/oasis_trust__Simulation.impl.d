lib/trust/simulation.ml: Array Assess Audit Float Format History List Oasis_util Registrar
