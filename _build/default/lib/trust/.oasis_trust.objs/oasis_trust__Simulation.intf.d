lib/trust/simulation.mli: Format
