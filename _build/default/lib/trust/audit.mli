(** Audit certificates (Sect. 6).

    "After an interaction subject to contract the CIV service creates an
    audit certificate which it issues to both parties and validates on
    request. ... Such certificates provide a distributed record of the
    histories of services and principals and might form the basis for
    interaction between mutually unknown parties."

    A certificate records one contracted interaction between a client and a
    server and how each side behaved. It is signed by the issuing registrar
    (a CIV extended with the audit function); signatures are checked by the
    registrar on request, as with other OASIS certificates. *)

type outcome =
  | Fulfilled  (** the party met its obligations *)
  | Breached  (** exploited resources, failed to pay, poor or partial fulfilment *)

val pp_outcome : Format.formatter -> outcome -> unit

type t = private {
  id : Oasis_util.Ident.t;
  registrar : Oasis_util.Ident.t;  (** issuing CIV; its domain weights the certificate's credibility *)
  client : Oasis_util.Ident.t;
  server : Oasis_util.Ident.t;
  at : float;
  client_outcome : outcome;
  server_outcome : outcome;
  signature : Oasis_crypto.Sha256.digest;
}

val issue :
  secret:Oasis_crypto.Secret.t ->
  id:Oasis_util.Ident.t ->
  registrar:Oasis_util.Ident.t ->
  client:Oasis_util.Ident.t ->
  server:Oasis_util.Ident.t ->
  at:float ->
  client_outcome:outcome ->
  server_outcome:outcome ->
  t
(** Used by {!Registrar}; the secret never leaves the registrar. *)

val verify : secret:Oasis_crypto.Secret.t -> t -> bool

val outcome_for : t -> Oasis_util.Ident.t -> outcome option
(** How the given party behaved in this interaction; [None] if it was not a
    party. *)

val involves : t -> Oasis_util.Ident.t -> bool

val with_server_outcome : t -> outcome -> t
(** Tampering helper for tests: altered record, original signature. *)

val pp : Format.formatter -> t -> unit
