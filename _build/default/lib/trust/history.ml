module Ident = Oasis_util.Ident

type t = { owner : Ident.t; mutable certs : Audit.t list }

let create owner = { owner; certs = [] }

let owner t = t.owner

let add t cert = if Audit.involves cert t.owner then t.certs <- cert :: t.certs

let present t = t.certs

let present_favourable t =
  List.filter (fun cert -> Audit.outcome_for cert t.owner = Some Audit.Fulfilled) t.certs

let size t = List.length t.certs
