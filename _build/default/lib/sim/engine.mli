(** Discrete-event simulation engine.

    The reproduction substitutes a deterministic discrete-event simulator for
    the paper's distributed deployment (DESIGN.md §3). The engine owns the
    virtual clock; all asynchrony — network delivery, event-channel
    notification, heartbeats — is expressed as thunks scheduled at virtual
    times and executed in [(time, scheduling order)] order. *)

type t

type cancel
(** Handle to a scheduled event; see {!cancel}. *)

val create : ?start:float -> unit -> t

val clock : t -> Oasis_util.Clock.t
val now : t -> float

val schedule : t -> after:float -> (unit -> unit) -> cancel
(** [schedule t ~after f] runs [f] at [now t +. after]. [after < 0] raises
    [Invalid_argument]. *)

val schedule_at : t -> at:float -> (unit -> unit) -> cancel

val cancel : t -> cancel -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val every : t -> period:float -> (unit -> bool) -> unit
(** [every t ~period f] runs [f] each [period]; stops when [f] returns
    [false]. Used for heartbeat emitters and pollers. *)

val run : t -> unit
(** Executes events until the queue is empty, advancing the clock. *)

val run_until : t -> float -> unit
(** Executes events with time ≤ the horizon, then advances the clock to the
    horizon exactly. *)

val step : t -> bool
(** Executes the single next event; [false] if the queue was empty. *)

val pending : t -> int
val events_executed : t -> int
