lib/sim/engine.mli: Oasis_util
