lib/sim/engine.ml: Heap Oasis_util Printf
