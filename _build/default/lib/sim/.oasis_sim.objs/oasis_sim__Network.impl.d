lib/sim/network.ml: Engine Hashtbl Oasis_util Printf Proc
