lib/sim/network.mli: Engine Oasis_util
