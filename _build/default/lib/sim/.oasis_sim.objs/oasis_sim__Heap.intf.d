lib/sim/heap.mli:
