module Clock = Oasis_util.Clock

type event = { mutable cancelled : bool; thunk : unit -> unit }

type cancel = event

type t = {
  clock : Clock.t;
  queue : event Heap.t;
  mutable seq : int;
  mutable executed : int;
}

let create ?(start = 0.0) () =
  { clock = Clock.manual ~start (); queue = Heap.create (); seq = 0; executed = 0 }

let clock t = t.clock

let now t = Clock.now t.clock

let schedule_at t ~at thunk =
  if at < now t then
    invalid_arg (Printf.sprintf "Engine.schedule_at: %g is in the past (now %g)" at (now t));
  let event = { cancelled = false; thunk } in
  Heap.push t.queue ~time:at ~seq:t.seq event;
  t.seq <- t.seq + 1;
  event

let schedule t ~after thunk =
  if after < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(now t +. after) thunk

let cancel _t event = event.cancelled <- true

let rec every t ~period f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  ignore
    (schedule t ~after:period (fun () -> if f () then every t ~period f))

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, event) ->
      Clock.advance_to t.clock time;
      if not event.cancelled then begin
        t.executed <- t.executed + 1;
        event.thunk ()
      end;
      true

let run t =
  while step t do
    ()
  done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek_time t.queue with
    | Some time when time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if horizon > now t then Clock.advance_to t.clock horizon

let pending t = Heap.size t.queue

let events_executed t = t.executed
