open Effect
open Effect.Deep

type 'a ivar_state = Empty of ('a -> unit) list | Full of 'a

type 'a ivar = { mutable state : 'a ivar_state }

type _ Effect.t += Sleep : float -> unit Effect.t
type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

exception Timeout

let spawn engine body =
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep delay ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore (Engine.schedule engine ~after:delay (fun () -> continue k ())))
          | Suspend register ->
              Some (fun (k : (a, unit) continuation) -> register (fun v -> continue k v))
          | _ -> None);
    }
  in
  match_with body () handler

let sleep delay = perform (Sleep delay)

let ivar () = { state = Empty [] }

let fill iv v =
  match iv.state with
  | Full _ -> invalid_arg "Proc.fill: ivar already filled"
  | Empty waiters ->
      iv.state <- Full v;
      (* Wake in registration order. *)
      List.iter (fun waiter -> waiter v) (List.rev waiters)

let poll iv = match iv.state with Full v -> Some v | Empty _ -> None

let read iv =
  match iv.state with
  | Full v -> v
  | Empty _ ->
      perform
        (Suspend
           (fun resume ->
             match iv.state with
             | Full v -> resume v
             | Empty waiters -> iv.state <- Empty (resume :: waiters)))

let read_timeout engine iv ~timeout =
  match iv.state with
  | Full v -> v
  | Empty _ ->
      let result =
        perform
          (Suspend
             (fun resume ->
               let resolved = ref false in
               let once outcome =
                 if not !resolved then begin
                   resolved := true;
                   resume outcome
                 end
               in
               ignore (Engine.schedule engine ~after:timeout (fun () -> once None));
               match iv.state with
               | Full v -> once (Some v)
               | Empty waiters -> iv.state <- Empty ((fun v -> once (Some v)) :: waiters)))
      in
      (match result with Some v -> v | None -> raise Timeout)
