(** Simulated message-passing network.

    Substitutes for the paper's real inter-service communication. Nodes are
    named by {!Oasis_util.Ident.t}; links have latency, deterministic jitter
    and an optional loss probability; traffic counters feed the benchmark
    harness (messages and round trips are the paper-shape quantities we
    report, see DESIGN.md §4).

    The payload type ['msg] is chosen by the instantiating layer (the OASIS
    core defines a protocol variant). RPC handlers run inside {!Proc}
    processes, so a handler may itself perform nested RPCs — exactly the
    structure of Fig. 3, where the local EHR service calls back the hospital
    and onward to the national service. *)

type 'msg t

type 'msg handler = {
  on_oneway : src:Oasis_util.Ident.t -> 'msg -> unit;
      (** One-way messages: event notifications, heartbeats. *)
  on_rpc : src:Oasis_util.Ident.t -> 'msg -> 'msg;
      (** Request/response; runs in a process and may suspend. *)
}

val create :
  Engine.t ->
  Oasis_util.Rng.t ->
  default_latency:float ->
  ?default_jitter:float ->
  ?size_of:('msg -> int) ->
  unit ->
  'msg t
(** [size_of] estimates a message's wire size for the byte counters;
    defaults to 0 (bytes not tracked). *)

val engine : 'msg t -> Engine.t

val add_node : 'msg t -> Oasis_util.Ident.t -> 'msg handler -> unit
(** Registering the same node twice raises [Invalid_argument]. *)

val remove_node : 'msg t -> Oasis_util.Ident.t -> unit

val set_link :
  'msg t -> Oasis_util.Ident.t -> Oasis_util.Ident.t -> latency:float -> ?jitter:float -> ?loss:float -> unit -> unit
(** Directed link override; unset pairs use the network defaults. *)

val set_down : 'msg t -> Oasis_util.Ident.t -> bool -> unit
(** A down node neither sends nor receives; messages to/from it are dropped
    (counted). Used for failure injection. *)

val is_down : 'msg t -> Oasis_util.Ident.t -> bool
(** [true] for down or unregistered nodes. *)

val send : 'msg t -> src:Oasis_util.Ident.t -> dst:Oasis_util.Ident.t -> 'msg -> unit
(** One-way send; delivery is scheduled after link latency. Sends to unknown
    nodes are dropped and counted. Callable from any context. *)

exception Rpc_dropped

val rpc :
  ?timeout:float -> 'msg t -> src:Oasis_util.Ident.t -> dst:Oasis_util.Ident.t -> 'msg -> 'msg
(** Request/response round trip; must be called inside a {!Proc} process.
    If the request or the response is lost and [timeout] is given, raises
    {!Proc.Timeout} after that much virtual time; without a timeout, a loss
    raises {!Rpc_dropped} immediately at the point of loss detection
    (simulator privilege: we know the packet died — this keeps lossless
    experiments free of timeout tuning). *)

val set_tracer :
  'msg t -> (src:Oasis_util.Ident.t -> dst:Oasis_util.Ident.t -> 'msg -> unit) option -> unit
(** Observes every message handed to the network (including ones that will
    be lost), before delivery scheduling. For debugging and packet traces;
    [None] removes the tracer. *)

(** Traffic statistics. *)
type stats = {
  sent : int;  (** messages handed to the network, including lost ones *)
  delivered : int;
  dropped : int;
  rpcs : int;  (** completed round trips *)
  bytes_sent : int;  (** per [size_of]; 0 when no estimator was given *)
}

val stats : 'msg t -> stats
val reset_stats : 'msg t -> unit
