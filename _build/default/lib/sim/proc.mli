(** Cooperative simulated processes via OCaml effect handlers.

    Distributed protocol logic (role activation with validation callbacks,
    cross-domain invocation chains) reads naturally in direct style. [Proc]
    lets such code suspend on virtual-time waits and on asynchronous replies
    while the {!Engine} interleaves all live processes deterministically.

    All [Proc] operations must be called from inside a process started with
    {!spawn}; calling them elsewhere raises [Effect.Unhandled]. *)

type 'a ivar
(** A write-once cell that processes can block on. *)

val spawn : Engine.t -> (unit -> unit) -> unit
(** Starts a process. It runs immediately until it first suspends; thereafter
    the engine resumes it as its waits complete. An uncaught exception in the
    process propagates out of the engine's [run]. *)

val sleep : float -> unit
(** Suspends the calling process for a virtual-time delay. *)

val ivar : unit -> 'a ivar

val fill : 'a ivar -> 'a -> unit
(** Fills the cell and wakes all readers. Filling twice raises
    [Invalid_argument]. May be called from any context (e.g. an engine
    callback), not only from inside a process. *)

val read : 'a ivar -> 'a
(** Returns the value, suspending the calling process until filled. *)

val poll : 'a ivar -> 'a option
(** Non-blocking read, usable from any context. *)

exception Timeout

val read_timeout : Engine.t -> 'a ivar -> timeout:float -> 'a
(** Like {!read} but raises {!Timeout} in the calling process if the cell is
    still empty after [timeout] virtual seconds. *)
