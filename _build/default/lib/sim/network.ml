module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng

type 'msg handler = {
  on_oneway : src:Ident.t -> 'msg -> unit;
  on_rpc : src:Ident.t -> 'msg -> 'msg;
}

type link = { latency : float; jitter : float; loss : float }

type 'msg node = { handler : 'msg handler; mutable down : bool }

type stats = { sent : int; delivered : int; dropped : int; rpcs : int; bytes_sent : int }

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  nodes : 'msg node Ident.Tbl.t;
  links : (Ident.t * Ident.t, link) Hashtbl.t;
  default : link;
  size_of : 'msg -> int;
  mutable tracer : (src:Ident.t -> dst:Ident.t -> 'msg -> unit) option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable rpcs : int;
  mutable bytes_sent : int;
}

exception Rpc_dropped

let create engine rng ~default_latency ?(default_jitter = 0.0) ?(size_of = fun _ -> 0) () =
  {
    engine;
    rng;
    nodes = Ident.Tbl.create 64;
    links = Hashtbl.create 64;
    default = { latency = default_latency; jitter = default_jitter; loss = 0.0 };
    size_of;
    tracer = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    rpcs = 0;
    bytes_sent = 0;
  }

let engine t = t.engine

let add_node t id handler =
  if Ident.Tbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Network.add_node: %s already registered" (Ident.to_string id));
  Ident.Tbl.replace t.nodes id { handler; down = false }

let remove_node t id = Ident.Tbl.remove t.nodes id

let set_link t src dst ~latency ?(jitter = 0.0) ?(loss = 0.0) () =
  Hashtbl.replace t.links (src, dst) { latency; jitter; loss }

let is_down t id =
  match Ident.Tbl.find_opt t.nodes id with Some node -> node.down | None -> true

let set_down t id down =
  match Ident.Tbl.find_opt t.nodes id with
  | Some node -> node.down <- down
  | None -> invalid_arg (Printf.sprintf "Network.set_down: unknown node %s" (Ident.to_string id))

let link_for t src dst =
  match Hashtbl.find_opt t.links (src, dst) with Some l -> l | None -> t.default

let delay_of t link = link.latency +. (if link.jitter > 0.0 then Rng.float t.rng link.jitter else 0.0)

(* Attempts one message leg. [k] runs at delivery time with the destination
   node; [lost] runs immediately if the leg cannot complete. *)
let transmit t ~src ~dst ~msg ~k ~lost =
  t.sent <- t.sent + 1;
  t.bytes_sent <- t.bytes_sent + t.size_of msg;
  (match t.tracer with Some trace -> trace ~src ~dst msg | None -> ());
  let src_node = Ident.Tbl.find_opt t.nodes src in
  let dst_exists = Ident.Tbl.mem t.nodes dst in
  let src_down = match src_node with Some n -> n.down | None -> false in
  let link = link_for t src dst in
  if src_down || (not dst_exists) || (link.loss > 0.0 && Rng.bernoulli t.rng link.loss) then begin
    t.dropped <- t.dropped + 1;
    lost ()
  end
  else
    let delay = delay_of t link in
    ignore
      (Engine.schedule t.engine ~after:delay (fun () ->
           match Ident.Tbl.find_opt t.nodes dst with
           | Some node when not node.down ->
               t.delivered <- t.delivered + 1;
               k node
           | Some _ | None ->
               (* Destination vanished or went down in flight. *)
               t.dropped <- t.dropped + 1;
               lost ()))

let send t ~src ~dst msg =
  transmit t ~src ~dst ~msg
    ~k:(fun node -> node.handler.on_oneway ~src msg)
    ~lost:(fun () -> ())

type 'msg rpc_outcome = Ok_reply of 'msg | Lost

let rpc ?timeout t ~src ~dst msg =
  let iv : 'msg rpc_outcome Proc.ivar = Proc.ivar () in
  let lost () =
    (* With a timeout the caller waits it out (models a lost datagram);
       without one we fail fast — see the interface comment. *)
    match timeout with
    | Some _ -> ()
    | None -> if Proc.poll iv = None then Proc.fill iv Lost
  in
  transmit t ~src ~dst ~msg ~lost ~k:(fun node ->
      Proc.spawn t.engine (fun () ->
          let reply = node.handler.on_rpc ~src msg in
          transmit t ~src:dst ~dst:src ~msg:reply ~lost ~k:(fun _src_node ->
              if Proc.poll iv = None then Proc.fill iv (Ok_reply reply))));
  let outcome =
    match timeout with
    | None -> Proc.read iv
    | Some timeout -> Proc.read_timeout t.engine iv ~timeout
  in
  match outcome with
  | Ok_reply reply ->
      t.rpcs <- t.rpcs + 1;
      reply
  | Lost -> raise Rpc_dropped

let set_tracer t tracer = t.tracer <- tracer

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    rpcs = t.rpcs;
    bytes_sent = t.bytes_sent;
  }

let reset_stats t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.rpcs <- 0;
  t.bytes_sent <- 0
