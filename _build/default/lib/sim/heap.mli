(** Minimal binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties so that events scheduled for the same
    instant fire in scheduling order — a determinism requirement for
    replayable simulations. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the minimum element. *)

val peek_time : 'a t -> float option
(** The key of the minimum element without removing it. *)
