(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the reproduction (network jitter, workload
    generators, Byzantine behaviour) draws from an explicit [Rng.t] so that
    experiments are replayable from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Generators created from the same
    seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. Use to give
    each simulated component its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential inter-arrival time. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes, e.g. for nonces and secrets. *)
