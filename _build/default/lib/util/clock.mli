(** Simulated time.

    All components read time through a [Clock.t] handle so that the discrete
    event engine can drive a whole world on virtual time. Times are seconds
    as floats. *)

type t

val manual : ?start:float -> unit -> t
(** A clock advanced explicitly (by the simulation engine or by tests). *)

val now : t -> float

val advance_to : t -> float -> unit
(** Moves the clock forward. Raises [Invalid_argument] on attempts to move
    time backwards — simulations must never reorder the past. *)

val advance_by : t -> float -> unit
