type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Time of float
  | Id of Ident.t

let type_rank = function
  | Int _ -> 0
  | Str _ -> 1
  | Bool _ -> 2
  | Time _ -> 3
  | Id _ -> 4

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Time x, Time y -> Float.compare x y
  | Id x, Id y -> Ident.compare x y
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s
  | Bool b -> string_of_bool b
  | Time f -> Printf.sprintf "t:%g" f
  | Id i -> Ident.to_string i

let pp ppf v = Format.pp_print_string ppf (to_string v)

let type_name = function
  | Int _ -> "int"
  | Str _ -> "str"
  | Bool _ -> "bool"
  | Time _ -> "time"
  | Id _ -> "id"

let encode buf v =
  let add_tagged tag payload =
    Buffer.add_char buf tag;
    Buffer.add_string buf (string_of_int (String.length payload));
    Buffer.add_char buf ':';
    Buffer.add_string buf payload
  in
  match v with
  | Int n -> add_tagged 'i' (string_of_int n)
  | Str s -> add_tagged 's' s
  | Bool b -> add_tagged 'b' (if b then "1" else "0")
  | Time f -> add_tagged 't' (Printf.sprintf "%h" f)
  | Id i -> add_tagged 'd' (Ident.to_string i)

let of_string s =
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match s with
      | "true" -> Bool true
      | "false" -> Bool false
      | _ ->
          if String.length s > 2 && String.sub s 0 2 = "t:" then
            match float_of_string_opt (String.sub s 2 (String.length s - 2)) with
            | Some f -> Time f
            | None -> Str s
          else
            match Ident.of_string s with
            | Some i -> Id i
            | None -> Str s)
