type t = { mutable current : float }

let manual ?(start = 0.0) () = { current = start }

let now t = t.current

let advance_to t time =
  if time < t.current then
    invalid_arg
      (Printf.sprintf "Clock.advance_to: %g is before current time %g" time t.current);
  t.current <- time

let advance_by t delta =
  if delta < 0.0 then invalid_arg "Clock.advance_by: negative delta";
  t.current <- t.current +. delta
