type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, OOPSLA 2014. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  (* 53 random bits mapped into [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b
