(** Parameter values carried by parametrised roles and certificates.

    OASIS role parameters "might be the identifier or location of the
    computer, the name of the activator of the role, some identifier of the
    activator, such as a public key or health service identifier, the patient
    the activator is treating, and so on" (Sect. 2). [Value.t] is the closed
    universe of such parameter values used throughout the reproduction. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Time of float  (** seconds of simulated time *)
  | Id of Ident.t  (** a principal / service / domain / certificate id *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val type_name : t -> string
(** ["int"], ["str"], ["bool"], ["time"] or ["id"]; used in error messages
    and for parameter signature checks. *)

val encode : Buffer.t -> t -> unit
(** Appends an unambiguous, length-prefixed wire encoding; used when
    computing certificate signatures so that distinct field lists can never
    collide ([Fig. 4]'s protected fields). *)

val of_string : string -> t
(** Best-effort parse used by the policy parser: integers, [true]/[false],
    [t:<float>] for times, [tag#n] for identifiers, anything else a string. *)
