(** Namespaced unique identifiers.

    OASIS names many kinds of entity — principals, services, roles, domains,
    certificates, sessions. An [Ident.t] pairs a namespace tag with a unique
    number so that identifiers of different kinds never collide and print
    readably (e.g. ["principal#12"]). *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val tag : t -> string
(** The namespace tag the identifier was minted under. *)

val number : t -> int

type gen
(** A generator mints identifiers under a fixed tag with increasing numbers.
    Generators are independent: two worlds built from fresh generators mint
    identical identifier sequences, which keeps simulations deterministic. *)

val generator : string -> gen
val fresh : gen -> t

val make : string -> int -> t
(** [make tag n] names an identifier directly. Intended for tests and for
    reconstructing identifiers parsed off the wire. *)

val of_string : string -> t option
(** Parses the [to_string] form ["tag#n"]. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
