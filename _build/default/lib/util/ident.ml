type t = { tag : string; n : int }

let compare a b =
  let c = String.compare a.tag b.tag in
  if c <> 0 then c else Int.compare a.n b.n

let equal a b = a.n = b.n && String.equal a.tag b.tag

let hash a = Hashtbl.hash (a.tag, a.n)

let to_string a = Printf.sprintf "%s#%d" a.tag a.n

let pp ppf a = Format.pp_print_string ppf (to_string a)

let tag a = a.tag

let number a = a.n

type gen = { gtag : string; mutable next : int }

let generator gtag = { gtag; next = 0 }

let fresh g =
  let n = g.next in
  g.next <- n + 1;
  { tag = g.gtag; n }

let make tag n = { tag; n }

let of_string s =
  match String.rindex_opt s '#' with
  | None -> None
  | Some i ->
      let tag = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt rest with
      | Some n when n >= 0 && tag <> "" -> Some { tag; n }
      | _ -> None)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hash = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hash)
