lib/util/ident.ml: Format Hashtbl Int Map Printf Set String
