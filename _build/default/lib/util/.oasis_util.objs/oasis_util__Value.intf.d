lib/util/value.mli: Buffer Format Ident
