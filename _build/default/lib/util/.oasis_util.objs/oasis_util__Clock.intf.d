lib/util/clock.mli:
