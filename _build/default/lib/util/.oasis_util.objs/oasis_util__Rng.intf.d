lib/util/rng.mli:
