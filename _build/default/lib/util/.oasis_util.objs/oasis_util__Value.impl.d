lib/util/value.ml: Bool Buffer Float Format Ident Int Printf String
