lib/util/clock.ml: Printf
