(** Remote validation caching (Sect. 4).

    "An OASIS-aware service will validate a certificate presented as an
    argument via callback to the issuer. The service may cache the
    certificate and the result of validation in order to reduce the
    communication overhead of repeated callback. This requires an event
    channel so that the issuer can notify the service should the certificate
    be invalidated for any reason."

    Only positive verdicts are cached — a certificate seen as invalid might
    be superseded by a fresh one under the same principal, and negatives are
    cheap to re-check. Experiment E3 measures the round trips this cache
    saves. *)

type t

val create : unit -> t

val cache_valid : t -> Oasis_util.Ident.t -> unit
(** Records a positive callback verdict for a certificate id. *)

val lookup : t -> Oasis_util.Ident.t -> bool
(** [true] iff a positive verdict is cached (counts a hit); [false] means
    the caller must perform the callback (counts a miss). *)

val invalidate : t -> Oasis_util.Ident.t -> unit
(** Called on an invalidation event from the issuer's channel. Idempotent. *)

val clear : t -> unit

type stats = { hits : int; misses : int; invalidations : int; entries : int }

val stats : t -> stats
val reset_stats : t -> unit
