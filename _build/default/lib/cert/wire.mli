(** Canonical field encoding for certificate signatures and sizes.

    Fig. 4's signature is [F(principal_id, protected RMC fields, SECRET)].
    For the MAC to protect against field-boundary games every encoded field
    is length-prefixed and tagged, so distinct field lists can never encode
    to the same byte string. The same encoding doubles as the simulated wire
    format when the benchmarks report certificate sizes. *)

type field =
  | Fident : Oasis_util.Ident.t -> field
  | Fstring : string -> field
  | Fvalue : Oasis_util.Value.t -> field
  | Ffloat : float -> field
  | Fint : int -> field
  | Fvalues : Oasis_util.Value.t list -> field

val encode : string -> field list -> string
(** [encode tag fields] — [tag] domain-separates certificate kinds
    (["rmc"], ["appt"], ["audit"]) so a signature for one kind can never
    verify as another. *)

val size_bytes : string -> field list -> int
(** Length of {!encode} plus the 32-byte signature: the certificate's
    simulated wire size. *)
