lib/cert/wire.ml: Buffer List Oasis_util Printf String
