lib/cert/appointment.mli: Format Oasis_crypto Oasis_util
