lib/cert/validation_cache.ml: Oasis_util
