lib/cert/credential_record.mli: Oasis_util
