lib/cert/codec.mli: Appointment Format Rmc
