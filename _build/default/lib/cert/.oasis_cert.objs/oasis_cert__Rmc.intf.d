lib/cert/rmc.mli: Format Oasis_crypto Oasis_util
