lib/cert/codec.ml: Appointment Float Format List Oasis_crypto Oasis_util Printf Rmc String Wire
