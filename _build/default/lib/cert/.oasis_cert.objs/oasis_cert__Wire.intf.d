lib/cert/wire.mli: Oasis_util
