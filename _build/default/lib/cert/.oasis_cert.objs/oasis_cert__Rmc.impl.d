lib/cert/rmc.ml: Format Oasis_crypto Oasis_util Wire
