lib/cert/validation_cache.mli: Oasis_util
