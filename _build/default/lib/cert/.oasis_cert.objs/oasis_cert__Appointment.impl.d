lib/cert/appointment.ml: Float Format Oasis_crypto Oasis_util Printf Wire
