lib/cert/credential_record.ml: Oasis_util Printf
