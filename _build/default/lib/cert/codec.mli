(** Certificate marshalling.

    Serialises RMCs and appointment certificates to the tagged,
    length-prefixed byte format of {!Wire} and parses them back. The decoder
    is total: malformed input yields [Error], never an exception — parsing
    adversarial bytes is exactly the attack surface a deployed OASIS node
    exposes. Signatures travel with the certificate; tampering with the
    serialised bytes is caught by signature verification after decode, not
    by the decoder. *)

type error = { offset : int; reason : string }

val pp_error : Format.formatter -> error -> unit

val rmc_to_string : Rmc.t -> string
val rmc_of_string : string -> (Rmc.t, error) result

val appointment_to_string : Appointment.t -> string
val appointment_of_string : string -> (Appointment.t, error) result
