module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

type field =
  | Fident : Ident.t -> field
  | Fstring : string -> field
  | Fvalue : Value.t -> field
  | Ffloat : float -> field
  | Fint : int -> field
  | Fvalues : Value.t list -> field

let add_lp buf tag payload =
  Buffer.add_char buf tag;
  Buffer.add_string buf (string_of_int (String.length payload));
  Buffer.add_char buf ':';
  Buffer.add_string buf payload

let add_field buf = function
  | Fident id -> add_lp buf 'I' (Ident.to_string id)
  | Fstring s -> add_lp buf 'S' s
  | Fvalue v ->
      let b = Buffer.create 16 in
      Value.encode b v;
      add_lp buf 'V' (Buffer.contents b)
  | Ffloat f -> add_lp buf 'F' (Printf.sprintf "%h" f)
  | Fint n -> add_lp buf 'N' (string_of_int n)
  | Fvalues vs ->
      let b = Buffer.create 32 in
      List.iter (Value.encode b) vs;
      add_lp buf 'L' (Buffer.contents b)

let encode tag fields =
  let buf = Buffer.create 128 in
  add_lp buf 'T' tag;
  List.iter (add_field buf) fields;
  Buffer.contents buf

let signature_bytes = 32

let size_bytes tag fields = String.length (encode tag fields) + signature_bytes
