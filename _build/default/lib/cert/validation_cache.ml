module Ident = Oasis_util.Ident

type t = {
  table : unit Ident.Tbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create () = { table = Ident.Tbl.create 64; hits = 0; misses = 0; invalidations = 0 }

let cache_valid t cert_id = Ident.Tbl.replace t.table cert_id ()

let lookup t cert_id =
  if Ident.Tbl.mem t.table cert_id then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let invalidate t cert_id =
  if Ident.Tbl.mem t.table cert_id then begin
    Ident.Tbl.remove t.table cert_id;
    t.invalidations <- t.invalidations + 1
  end

let clear t = Ident.Tbl.reset t.table

type stats = { hits : int; misses : int; invalidations : int; entries : int }

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    entries = Ident.Tbl.length t.table;
  }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0
