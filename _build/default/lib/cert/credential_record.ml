module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

type status = Valid | Revoked of { at : float; reason : string }

type kind = Kind_rmc | Kind_appointment

type t = {
  cert_id : Ident.t;
  issuer : Ident.t;
  kind : kind;
  principal : Ident.t;
  name : string;
  args : Value.t list;
  issued_at : float;
  mutable status : status;
}

let topic_of ~issuer ~cert_id =
  Printf.sprintf "cr:%s/%s" (Ident.to_string issuer) (Ident.to_string cert_id)

let topic t = topic_of ~issuer:t.issuer ~cert_id:t.cert_id

let is_valid t = match t.status with Valid -> true | Revoked _ -> false

type store = t Ident.Tbl.t

let create_store () = Ident.Tbl.create 256

let add store ~cert_id ~issuer ~kind ~principal ~name ~args ~issued_at =
  if Ident.Tbl.mem store cert_id then
    invalid_arg
      (Printf.sprintf "Credential_record.add: duplicate certificate %s" (Ident.to_string cert_id));
  let record = { cert_id; issuer; kind; principal; name; args; issued_at; status = Valid } in
  Ident.Tbl.replace store cert_id record;
  record

let find store cert_id = Ident.Tbl.find_opt store cert_id

let revoke store cert_id ~at ~reason =
  match Ident.Tbl.find_opt store cert_id with
  | Some record when is_valid record ->
      record.status <- Revoked { at; reason };
      Some record
  | Some _ | None -> None

let count store = Ident.Tbl.length store

let valid_count store =
  Ident.Tbl.fold (fun _ record acc -> if is_valid record then acc + 1 else acc) store 0

let iter store f = Ident.Tbl.iter (fun _ record -> f record) store
