(** Textual policy language.

    The paper's companion work translates pseudo-natural-language policy into
    first-order predicate calculus (Sect. 1, ref [1]); services then hold the
    formal rules. This module gives the reproduction a concrete syntax for
    those rules so examples and tests read like the paper's policies.

    Note on ['*']: prerequisite-role dependencies are monitored by the
    engine whether or not they carry the marker — Sect. 4's session trees
    always collapse. The marker matters for appointment certificates and
    environmental constraints, which are checked only at activation unless
    starred.

    Grammar (statements end with [;]; [//] starts a comment):
    {v
    // role activation; '*' marks a membership (monitored) condition,
    // '@svc' names the issuing service (default: the installing service),
    // 'initial' marks a session-starting role.
    initial logged_in(u) <- appt:employee(u)@admin ;
    doctor(u) <- *logged_in(u), appt:qualified(u)@admin ;
    treating_doctor(doc, pat) <-
        *doctor(doc), *appt:assigned(doc, pat)@aande, env:!excluded(doc, pat) ;

    // authorization of a privilege at this service
    priv read_record(doc, pat) <- treating_doctor(doc, pat), env:!excluded(doc, pat) ;

    // who may issue 'assigned' appointment certificates
    appoint assigned(doc, pat) <- screening_nurse(n) ;
    v}

    Argument tokens: lowercase identifiers are variables; ["quoted"] strings,
    integers, floats (read as {!Oasis_util.Value.Time}), [true]/[false] and
    [tag#n] identifiers are constants. *)

type statement =
  | Activation of Rule.activation
  | Authorization of Rule.authorization
  | Appointer of Rule.authorization
      (** [appoint kind(args) <- conditions ;] — who may issue appointment
          certificates of this kind ("being active in certain roles carries
          the privilege of issuing appointment certificates", Sect. 1). The
          [privilege] field carries the kind; conditions are roles and
          environmental constraints, as for [priv]. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (statement list, error) result

val parse_exn : string -> statement list
(** Raises [Failure] with the formatted error; for policies embedded in
    examples and tests. *)

val activations : statement list -> Rule.activation list
val authorizations : statement list -> Rule.authorization list
val appointers : statement list -> Rule.authorization list

val print_statement : statement -> string
(** Canonical concrete syntax: [parse (print_statement s)] yields a
    statement structurally equal to [s] (property-tested). Strings
    containing ['"'] or newlines are not printable; [Invalid_argument]. *)

val print : statement list -> string
(** One statement per line. *)
