lib/policy/parser.mli: Format Rule
