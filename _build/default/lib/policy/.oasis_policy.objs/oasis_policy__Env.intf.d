lib/policy/env.mli: Oasis_util
