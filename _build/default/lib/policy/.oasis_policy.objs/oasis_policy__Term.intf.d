lib/policy/term.mli: Format Oasis_util
