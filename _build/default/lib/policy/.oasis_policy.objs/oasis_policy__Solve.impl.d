lib/policy/solve.ml: Format List Oasis_util Option Rule Term
