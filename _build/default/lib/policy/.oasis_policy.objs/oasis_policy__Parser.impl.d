lib/policy/parser.ml: Format List Oasis_util Printf Rule String Term
