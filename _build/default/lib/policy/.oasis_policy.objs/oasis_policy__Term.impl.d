lib/policy/term.ml: Format Hashtbl List Map Oasis_util String
