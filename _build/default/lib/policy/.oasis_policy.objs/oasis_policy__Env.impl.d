lib/policy/env.ml: Float Hashtbl List Oasis_util Printf Set String
