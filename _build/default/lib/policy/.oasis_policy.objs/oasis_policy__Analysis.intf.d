lib/policy/analysis.mli: Format Parser Rule
