lib/policy/rule.ml: Format List Printf Term
