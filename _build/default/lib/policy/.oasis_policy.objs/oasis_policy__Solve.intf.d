lib/policy/solve.mli: Format Oasis_util Rule Term
