lib/policy/rule.mli: Format Term
