lib/policy/analysis.ml: Format Hashtbl List Map Option Parser Rule Set String
