(** Terms and substitutions for the Horn-clause policy language.

    Role activation rules are Horn clauses over parametrised atoms
    (Sect. 2). A term is either a variable (bound during rule evaluation,
    e.g. the [doctor_id] in [treating_doctor(doctor_id, patient_id)]) or a
    constant parameter value. *)

type t =
  | Var of string
  | Const of Oasis_util.Value.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val vars : t list -> string list
(** Distinct variable names, in first-occurrence order. *)

(** Substitutions map variable names to ground values. *)
module Subst : sig
  type binding = Oasis_util.Value.t

  type nonrec t

  val empty : t
  val find : t -> string -> binding option
  val bind : t -> string -> binding -> t option
  (** [None] if the variable is already bound to a different value. *)

  val bindings : t -> (string * binding) list
  val pp : Format.formatter -> t -> unit
end

val apply : Subst.t -> t -> t
(** Replaces bound variables by their values. *)

val ground : Subst.t -> t -> Oasis_util.Value.t option
(** The value of a term under a substitution; [None] if still a free var. *)

val unify : Subst.t -> t -> Oasis_util.Value.t -> Subst.t option
(** Unifies one term against a ground value. *)

val unify_args : Subst.t -> t list -> Oasis_util.Value.t list -> Subst.t option
(** Pointwise unification; [None] on arity mismatch or clash. *)
