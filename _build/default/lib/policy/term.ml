module Value = Oasis_util.Value

type t =
  | Var of string
  | Const of Value.t

let to_string = function
  | Var v -> v
  | Const c -> Value.to_string c

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> Value.equal x y
  | Var _, Const _ | Const _, Var _ -> false

let vars terms =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (function
      | Const _ -> None
      | Var v ->
          if Hashtbl.mem seen v then None
          else begin
            Hashtbl.add seen v ();
            Some v
          end)
    terms

module Subst = struct
  module M = Map.Make (String)

  type binding = Value.t

  type t = binding M.t

  let empty = M.empty

  let find t v = M.find_opt v t

  let bind t v value =
    match M.find_opt v t with
    | None -> Some (M.add v value t)
    | Some existing -> if Value.equal existing value then Some t else None

  let bindings t = M.bindings t

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (v, value) -> Format.fprintf ppf "%s=%a" v Value.pp value))
      (bindings t)
end

let apply subst = function
  | Const _ as t -> t
  | Var v as t -> ( match Subst.find subst v with Some value -> Const value | None -> t)

let ground subst = function
  | Const c -> Some c
  | Var v -> Subst.find subst v

let unify subst term value =
  match term with
  | Const c -> if Value.equal c value then Some subst else None
  | Var v -> Subst.bind subst v value

let unify_args subst terms values =
  if List.length terms <> List.length values then None
  else
    List.fold_left2
      (fun acc term value -> match acc with None -> None | Some s -> unify s term value)
      (Some subst) terms values
