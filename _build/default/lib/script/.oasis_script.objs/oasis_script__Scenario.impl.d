lib/script/scenario.ml: Buffer Format Hashtbl List Oasis_cert Oasis_core Oasis_domain Oasis_policy Oasis_util Option Printf Result String
