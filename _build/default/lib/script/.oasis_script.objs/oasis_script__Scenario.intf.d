lib/script/scenario.mli: Format Oasis_policy
